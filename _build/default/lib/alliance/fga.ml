module Algorithm = Ssreset_sim.Algorithm
module Graph = Ssreset_graph.Graph
module Sdr = Ssreset_core.Sdr

type state = {
  id : int;
  f_u : int;
  g_u : int;
  col : bool;
  scr : int;
  can_q : bool;
  ptr : int option;
}

let pp_state ppf s =
  Fmt.pf ppf "{id=%d;%s;scr=%d;%s;ptr=%a}" s.id
    (if s.col then "in" else "out")
    s.scr
    (if s.can_q then "canQ" else "noQ")
    Fmt.(option ~none:(any "⊥") int)
    s.ptr

let equal_state a b =
  a.id = b.id && a.f_u = b.f_u && a.g_u = b.g_u && a.col = b.col
  && a.scr = b.scr && a.can_q = b.can_q && a.ptr = b.ptr

let rule_clr = "FGA-Clr"
let rule_p1 = "FGA-P1"
let rule_p2 = "FGA-P2"
let rule_q = "FGA-Q"

(* Macros of Algorithm 3, evaluated on a view.  Several of them must be
   re-evaluated inside an action after the own state changed (the macro
   [upd(u)] runs after [col := false] in rule Clr); they therefore take the
   own state explicitly. *)

let in_all (v : state Algorithm.view) =
  Array.fold_left (fun acc s -> if s.col then acc + 1 else acc) 0 v.Algorithm.nbrs

let real_scr self v =
  let count = in_all v in
  let threshold = if self.col then self.g_u else self.f_u in
  if count < threshold then -1 else if count = threshold then 0 else 1

let p_can_quit self v =
  self.col
  && in_all v >= self.f_u
  && Array.for_all (fun s -> s.scr = 1) v.Algorithm.nbrs

let p_to_quit self v =
  p_can_quit self v
  && self.ptr = Some self.id
  && Array.for_all (fun s -> s.ptr = Some self.id) v.Algorithm.nbrs

(* bestPtr(u).  Deviation from the printed macro (see DESIGN.md): the
   printed version returns ⊥ whenever scr_u ≤ 0, which also blocks u from
   approving {e itself}; a member m with #InAll(m) = g(m) > f(m) is then
   stuck even when A \ {m} is an alliance, and the run terminates at a
   non-1-minimal alliance (Theorem 8 breaks for g > f).  Since u leaving
   does not cost u an alliance neighbor, self-approval only needs canQ_u;
   approving a {e neighbor} still requires scr_u = 1 (u must afford losing
   it). *)
let best_ptr self v =
  let best = ref (if self.can_q then Some self.id else None) in
  if self.scr = 1 then
    Array.iter
      (fun s ->
        if s.can_q then
          match !best with
          | None -> best := Some s.id
          | Some b -> if s.id < b then best := Some s.id)
      v.Algorithm.nbrs;
  !best

(* col_{ptr_u}: membership of the pointed member of the closed
   neighborhood.  The pointer domain is N[u] ∪ {⊥}, so the lookup always
   succeeds on domain-respecting states; a dangling id (impossible in the
   model, conceivable only through a buggy generator) is conservatively
   treated as "in the alliance" so that P_ICorrect rejects the state. *)
let col_of_ptr self v ptr_id =
  if ptr_id = self.id then self.col
  else
    match Array.find_opt (fun s -> s.id = ptr_id) v.Algorithm.nbrs with
    | Some s -> s.col
    | None -> true

(* P_ICorrect(u) of Algorithm 3, extended with one disjunct matching the
   bestPtr deviation above: a member may point at itself with scr = realScr
   ∈ {0, 1} (the printed invariant forces scr = 1 for any non-⊥ pointer). *)
let p_icorrect (v : state Algorithm.view) =
  let self = v.Algorithm.state in
  let rs = real_scr self v in
  rs >= 0
  && ((self.scr = 1 && rs = 1)
     || self.ptr = None
     || (self.ptr = Some self.id && self.col && self.scr = rs)
     ||
     match self.ptr with
     | Some p -> self.scr = 1 && not (col_of_ptr self v p)
     | None -> false)

(* The macros exactly as printed in the paper, kept for the regression test
   that demonstrates the non-1-minimal terminal configuration. *)
let printed_best_ptr self v =
  if self.scr <= 0 then None
  else begin
    let best = ref (if self.can_q then Some self.id else None) in
    Array.iter
      (fun s ->
        if s.can_q then
          match !best with
          | None -> best := Some s.id
          | Some b -> if s.id < b then best := Some s.id)
      v.Algorithm.nbrs;
    !best
  end

let printed_p_icorrect (v : state Algorithm.view) =
  let self = v.Algorithm.state in
  let rs = real_scr self v in
  rs >= 0
  && ((self.scr = 1 && rs = 1)
     || self.ptr = None
     ||
     match self.ptr with
     | Some p -> self.scr = 1 && not (col_of_ptr self v p)
     | None -> false)

(* cmpVar(u): scr := realScr(u); canQ := P_canQuit(u). *)
let cmp_var self v =
  { self with scr = real_scr self v; can_q = p_can_quit self v }

(* The four rules of Algorithm 3, parameterized over the two macros that
   differ between the fixed and the printed variants. *)
let make_rules ~p_icorrect ~best_ptr =
  let p_upd_ptr self v =
    (not (p_to_quit self v)) && self.ptr <> best_ptr self v
  in
  (* upd(u): cmpVar(u); ptr := bestPtr(u). *)
  let upd self v =
    let self = cmp_var self v in
    { self with ptr = best_ptr self v }
  in
  let action_clr (v : state Algorithm.view) =
    upd { v.Algorithm.state with col = false } v
  in
  let action_p1 (v : state Algorithm.view) =
    cmp_var { v.Algorithm.state with ptr = None } v
  in
  let action_p2 (v : state Algorithm.view) = upd v.Algorithm.state v in
  let action_q (v : state Algorithm.view) =
    let self = cmp_var v.Algorithm.state v in
    if self.scr <= 0 then { self with ptr = None } else self
  in
  [ { Algorithm.rule_name = rule_clr;
      guard = (fun v -> p_icorrect v && p_to_quit v.Algorithm.state v);
      action = action_clr };
    { Algorithm.rule_name = rule_p1;
      guard =
        (fun v ->
          let self = v.Algorithm.state in
          p_icorrect v && p_upd_ptr self v && self.ptr <> None);
      action = action_p1 };
    { Algorithm.rule_name = rule_p2;
      guard =
        (fun v ->
          let self = v.Algorithm.state in
          p_icorrect v && p_upd_ptr self v && self.ptr = None);
      action = action_p2 };
    { Algorithm.rule_name = rule_q;
      guard =
        (fun v ->
          let self = v.Algorithm.state in
          p_icorrect v
          && (not (p_to_quit self v))
          && (not (p_upd_ptr self v))
          && (self.scr <> real_scr self v || self.can_q <> p_can_quit self v));
      action = action_q } ]

let rules = make_rules ~p_icorrect ~best_ptr

let printed_rules =
  make_rules ~p_icorrect:printed_p_icorrect ~best_ptr:printed_best_ptr

module Make (P : sig
  val graph : Graph.t
  val spec : Spec.t
  val ids : int array option
end) =
struct
  let graph = P.graph

  let ids =
    match P.ids with
    | None -> Array.init (Graph.n graph) (fun u -> u)
    | Some ids ->
        if Array.length ids <> Graph.n graph then
          invalid_arg "Fga.Make: ids length mismatch";
        let sorted = Array.copy ids in
        Array.sort compare sorted;
        Array.iteri
          (fun i x ->
            if i > 0 && sorted.(i - 1) = x then
              invalid_arg "Fga.Make: duplicate identifier")
          sorted;
        ids

  let () =
    if not (Spec.feasible P.spec graph) then
      invalid_arg
        (Printf.sprintf
           "Fga.Make: spec %s infeasible (need degree >= max(f,g) everywhere)"
           P.spec.Spec.spec_name)

  module Input = struct
    type nonrec state = state

    let name = "fga-" ^ P.spec.Spec.spec_name
    let equal = equal_state
    let pp = pp_state
    let p_icorrect = p_icorrect
    let p_reset s = s.col && s.ptr = None && s.can_q && s.scr = 1
    let reset s = { s with col = true; ptr = None; can_q = true; scr = 1 }
    let rules = rules
  end

  module Composed = Sdr.Make (Input)

  let bare : state Algorithm.t =
    { Algorithm.name = Input.name ^ "-bare";
      rules;
      equal = equal_state;
      pp = pp_state }

  let bare_printed : state Algorithm.t =
    { Algorithm.name = Input.name ^ "-printed";
      rules = printed_rules;
      equal = equal_state;
      pp = pp_state }

  let init_state u =
    { id = ids.(u);
      f_u = P.spec.Spec.f graph u;
      g_u = P.spec.Spec.g graph u;
      col = true;
      scr = 1;
      can_q = true;
      ptr = None }

  let gamma_init () = Array.init (Graph.n graph) init_state

  let gen rng u =
    let base = init_state u in
    let nbrs = Graph.neighbors graph u in
    let ptr =
      (* Uniform over N[u] ∪ {⊥}: 0 = ⊥, 1 = self, 2.. = neighbors. *)
      match Random.State.int rng (Array.length nbrs + 2) with
      | 0 -> None
      | 1 -> Some base.id
      | i -> Some ids.(nbrs.(i - 2))
    in
    { base with
      col = Random.State.bool rng;
      scr = Random.State.int rng 3 - 1;
      can_q = Random.State.bool rng;
      ptr }

  let alliance cfg = Array.map (fun s -> s.col) cfg
  let alliance_of_composed cfg = Array.map (fun s -> s.Sdr.inner.col) cfg
end

(** Verification of (f,g)-alliance outputs. *)

val count_in : Ssreset_graph.Graph.t -> bool array -> int -> int
(** Number of neighbors of [u] inside the set. *)

val is_alliance : Ssreset_graph.Graph.t -> Spec.t -> bool array -> bool
(** Is the set an (f,g)-alliance? *)

val is_one_minimal : Ssreset_graph.Graph.t -> Spec.t -> bool array -> bool
(** Is it an alliance such that removing any single member breaks it? *)

val size : bool array -> int
(** Cardinality of the set. *)

val members : bool array -> int list

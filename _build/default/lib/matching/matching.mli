(** Maximal matching as an SDR input algorithm.

    Fifth instantiation of the reset-based method (generality claim, §1.1).
    Identified networks.  Each process holds a pointer [ptr ∈ N(u) ∪ {⊥}]
    (stored as the neighbor's identifier):

    - a process {e proposes} to its smallest-identifier unmatched pointer-free
      neighbor of smaller identifier;
    - a process with proposers {e accepts} the smallest one;
    - a process chained to a neighbor that got matched elsewhere
      {e withdraws}.

    Local checkability: any pointer must either go to a smaller identifier
    (a proposal, which only ever targets smaller ids) or be reciprocated (a
    match).  Upward unreciprocated pointers — which arbitrary faults can
    arrange into deadlocked pointer cycles — are locally incorrect and make
    SDR reset the region.  Terminal configurations of the composition carry
    a maximal matching (the reciprocated pairs). *)

module Sdr = Ssreset_core.Sdr

type state = {
  id : int;  (** constant *)
  ptr : int option;  (** identifier of the pointed neighbor, or ⊥ *)
}

val pp_state : state Fmt.t

val rule_accept : string
(** ["M-accept"]. *)

val rule_propose : string
(** ["M-propose"]. *)

val rule_withdraw : string
(** ["M-withdraw"]. *)

module Make (P : sig
  val graph : Ssreset_graph.Graph.t
  val ids : int array option
end) : sig
  module Input : Sdr.INPUT with type state = state
  module Composed : Sdr.S with type inner = state

  val bare : state Ssreset_sim.Algorithm.t
  val gamma_init : unit -> state array
  val gen : state Ssreset_sim.Fault.generator
  (** Arbitrary pointer drawn from N(u) ∪ {⊥}. *)

  val matching : state array -> (int * int) list
  (** The reciprocated pairs [(u, v)], u < v, as process indices. *)

  val matching_of_composed : state Sdr.state array -> (int * int) list

  val is_maximal_matching : (int * int) list -> bool
  (** The pairs are disjoint edges and no edge joins two unmatched
      processes. *)
end

module Algorithm = Ssreset_sim.Algorithm
module Graph = Ssreset_graph.Graph
module Sdr = Ssreset_core.Sdr

type state = {
  id : int;
  ptr : int option;
}

let pp_state ppf s =
  Fmt.pf ppf "{id=%d;ptr=%a}" s.id Fmt.(option ~none:(any "⊥") int) s.ptr

let rule_accept = "M-accept"
let rule_propose = "M-propose"
let rule_withdraw = "M-withdraw"

let nbr_by_id (v : state Algorithm.view) target =
  Array.find_opt (fun s -> s.id = target) v.Algorithm.nbrs

(* Smallest-id neighbor pointing at u (a proposer). *)
let best_proposer (v : state Algorithm.view) =
  let self = v.Algorithm.state in
  Array.fold_left
    (fun acc s ->
      if s.ptr = Some self.id then
        match acc with
        | Some b when b <= s.id -> acc
        | _ -> Some s.id
      else acc)
    None v.Algorithm.nbrs

(* Smallest-id pointer-free neighbor with a smaller identifier — the only
   processes u may propose to (downward proposals keep pointer structures
   acyclic). *)
let best_target (v : state Algorithm.view) =
  let self = v.Algorithm.state in
  Array.fold_left
    (fun acc s ->
      if s.ptr = None && s.id < self.id then
        match acc with
        | Some b when b <= s.id -> acc
        | _ -> Some s.id
      else acc)
    None v.Algorithm.nbrs

(* Any pointer must go to an actual smaller-id neighbor (proposal) or be
   reciprocated (match); everything else — dangling ids, upward
   unreciprocated pointers, pointer cycles — is locally incorrect and left
   to the reset layer. *)
let p_icorrect (v : state Algorithm.view) =
  let self = v.Algorithm.state in
  match self.ptr with
  | None -> true
  | Some target -> (
      match nbr_by_id v target with
      | None -> false
      | Some s -> target < self.id || s.ptr = Some self.id)

let rules =
  [ { Algorithm.rule_name = rule_accept;
      guard =
        (fun v ->
          p_icorrect v
          && v.Algorithm.state.ptr = None
          && best_proposer v <> None);
      action =
        (fun v ->
          { v.Algorithm.state with ptr = best_proposer v }) };
    { Algorithm.rule_name = rule_propose;
      guard =
        (fun v ->
          p_icorrect v
          && v.Algorithm.state.ptr = None
          && best_proposer v = None
          && best_target v <> None);
      action = (fun v -> { v.Algorithm.state with ptr = best_target v }) };
    { Algorithm.rule_name = rule_withdraw;
      guard =
        (fun v ->
          let self = v.Algorithm.state in
          p_icorrect v
          &&
          match self.ptr with
          | None -> false
          | Some target -> (
              match nbr_by_id v target with
              | None -> false
              | Some s -> s.ptr <> None && s.ptr <> Some self.id));
      action = (fun v -> { v.Algorithm.state with ptr = None }) } ]

module Make (P : sig
  val graph : Graph.t
  val ids : int array option
end) =
struct
  let graph = P.graph

  let ids =
    match P.ids with
    | None -> Array.init (Graph.n graph) (fun u -> u)
    | Some ids ->
        if Array.length ids <> Graph.n graph then
          invalid_arg "Matching.Make: ids length mismatch";
        ids

  let index_of_id =
    let tbl = Hashtbl.create (Graph.n graph) in
    Array.iteri (fun u id -> Hashtbl.replace tbl id u) ids;
    fun id -> Hashtbl.find tbl id

  module Input = struct
    type nonrec state = state

    let name = "matching"
    let equal (a : state) b = a = b
    let pp = pp_state
    let p_icorrect = p_icorrect
    let p_reset s = s.ptr = None
    let reset s = { s with ptr = None }
    let rules = rules
  end

  module Composed = Sdr.Make (Input)

  let bare : state Algorithm.t =
    { Algorithm.name = "matching-bare";
      rules;
      equal = Input.equal;
      pp = pp_state }

  let gamma_init () =
    Array.init (Graph.n graph) (fun u -> { id = ids.(u); ptr = None })

  let gen rng u =
    let nbrs = Graph.neighbors graph u in
    let ptr =
      match Random.State.int rng (Array.length nbrs + 1) with
      | 0 -> None
      | i -> Some ids.(nbrs.(i - 1))
    in
    { id = ids.(u); ptr }

  let matching_of_inner inner =
    let pairs = ref [] in
    Array.iteri
      (fun u (s : state) ->
        match s.ptr with
        | Some target ->
            let v = index_of_id target in
            if u < v && inner.(v).ptr = Some s.id then pairs := (u, v) :: !pairs
        | None -> ())
      inner;
    List.rev !pairs

  let matching cfg = matching_of_inner cfg

  let matching_of_composed cfg =
    matching_of_inner (Array.map (fun s -> s.Sdr.inner) cfg)

  let is_maximal_matching pairs =
    let n = Graph.n graph in
    let matched = Array.make n false in
    let disjoint =
      List.for_all
        (fun (u, v) ->
          let ok =
            (not matched.(u)) && (not matched.(v)) && Graph.has_edge graph u v
          in
          matched.(u) <- true;
          matched.(v) <- true;
          ok)
        pairs
    in
    disjoint
    && List.for_all
         (fun (u, v) -> matched.(u) || matched.(v))
         (Graph.edges graph)
end

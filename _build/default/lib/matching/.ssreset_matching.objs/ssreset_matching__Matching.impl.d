lib/matching/matching.ml: Array Fmt Hashtbl List Random Ssreset_core Ssreset_graph Ssreset_sim

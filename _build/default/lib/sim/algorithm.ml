module Graph = Ssreset_graph.Graph

type 'state view = {
  state : 'state;
  nbrs : 'state array;
}

type 'state rule = {
  rule_name : string;
  guard : 'state view -> bool;
  action : 'state view -> 'state;
}

type 'state t = {
  name : string;
  rules : 'state rule list;
  equal : 'state -> 'state -> bool;
  pp : 'state Fmt.t;
}

let view g cfg u =
  let nbr_ids = Graph.neighbors g u in
  { state = cfg.(u); nbrs = Array.map (fun v -> cfg.(v)) nbr_ids }

let views g cfg = Array.init (Graph.n g) (view g cfg)

let enabled_rule algo v = List.find_opt (fun r -> r.guard v) algo.rules
let is_enabled algo v = List.exists (fun r -> r.guard v) algo.rules

let enabled_processes algo g cfg =
  let acc = ref [] in
  for u = Graph.n g - 1 downto 0 do
    if is_enabled algo (view g cfg u) then acc := u :: !acc
  done;
  !acc

let is_terminal algo g cfg = enabled_processes algo g cfg = []

let for_all_views g cfg ~f =
  let n = Graph.n g in
  let rec loop u = u >= n || (f u (view g cfg u) && loop (u + 1)) in
  loop 0

let exclusive_rules algo v =
  List.filter_map
    (fun r -> if r.guard v then Some r.rule_name else None)
    algo.rules

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  stddev : float;
}

let summarize = function
  | [] -> { count = 0; mean = 0.; min = 0.; max = 0.; stddev = 0. }
  | xs ->
      let count = List.length xs in
      let fcount = float_of_int count in
      let total = List.fold_left ( +. ) 0. xs in
      let mean = total /. fcount in
      let mn = List.fold_left min infinity xs in
      let mx = List.fold_left max neg_infinity xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. fcount
      in
      { count; mean; min = mn; max = mx; stddev = sqrt var }

let summarize_ints xs = summarize (List.map float_of_int xs)
let max_int_list = List.fold_left max 0
let ratio a b = if b = 0 then 0. else float_of_int a /. float_of_int b

let pp_summary ppf s =
  Fmt.pf ppf "mean=%.1f min=%.0f max=%.0f sd=%.1f (%d samples)" s.mean s.min
    s.max s.stddev s.count

lib/sim/trace.mli: Algorithm Daemon Engine Fmt Random Ssreset_graph

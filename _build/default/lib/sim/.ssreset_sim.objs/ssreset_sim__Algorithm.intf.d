lib/sim/algorithm.mli: Fmt Ssreset_graph

lib/sim/engine.mli: Algorithm Daemon Random Ssreset_graph

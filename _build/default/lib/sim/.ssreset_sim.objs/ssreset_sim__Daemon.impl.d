lib/sim/daemon.ml: Array Hashtbl List Printf Random Ssreset_graph String

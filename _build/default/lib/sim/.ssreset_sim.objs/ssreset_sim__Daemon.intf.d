lib/sim/daemon.mli: Random Ssreset_graph

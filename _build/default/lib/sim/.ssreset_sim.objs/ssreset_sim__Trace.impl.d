lib/sim/trace.ml: Array Engine Fmt Hashtbl List

lib/sim/fault.mli: Random Ssreset_graph

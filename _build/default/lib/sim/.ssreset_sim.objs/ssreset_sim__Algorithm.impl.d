lib/sim/algorithm.ml: Array Fmt List Ssreset_graph

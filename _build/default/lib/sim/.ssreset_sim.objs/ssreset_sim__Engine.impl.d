lib/sim/engine.ml: Algorithm Array Daemon Hashtbl List Option Random Ssreset_graph String

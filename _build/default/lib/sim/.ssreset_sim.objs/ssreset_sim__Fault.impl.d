lib/sim/fault.ml: Array List Random Ssreset_graph

lib/sim/stats.ml: Fmt List

module Graph = Ssreset_graph.Graph

type 'state generator = Random.State.t -> int -> 'state

let arbitrary rng gen g = Array.init (Graph.n g) (fun u -> gen rng u)

let corrupt_processes rng gen victims cfg =
  let next = Array.copy cfg in
  List.iter (fun u -> next.(u) <- gen rng u) victims;
  next

let corrupt rng gen ~k cfg =
  let n = Array.length cfg in
  let k = min k n in
  (* Partial Fisher-Yates: the first [k] entries are a uniform sample. *)
  let order = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + Random.State.int rng (n - i) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  corrupt_processes rng gen (Array.to_list (Array.sub order 0 k)) cfg

(** Transient faults and arbitrary initial configurations.

    Self-stabilization quantifies over {e every} initial configuration.  We
    model this with per-algorithm state generators: given the process index
    and an RNG, a generator returns a state drawn from the variable domains
    (keeping "constants from the system" — identifiers, parameters — at
    their correct values, since transient faults do not alter them). *)

type 'state generator = Random.State.t -> int -> 'state
(** [gen rng u] draws an arbitrary state for process [u]. *)

val arbitrary :
  Random.State.t -> 'state generator -> Ssreset_graph.Graph.t -> 'state array
(** A fully arbitrary configuration: every process state is drawn by the
    generator. *)

val corrupt :
  Random.State.t ->
  'state generator ->
  k:int ->
  'state array ->
  'state array
(** [corrupt rng gen ~k cfg] returns a copy of [cfg] where [k] distinct
    random processes got their state replaced by an arbitrary one — a
    transient-fault burst hitting [k] processes.  [k] is clamped to [n]. *)

val corrupt_processes :
  Random.State.t -> 'state generator -> int list -> 'state array -> 'state array
(** Corrupt exactly the given processes. *)

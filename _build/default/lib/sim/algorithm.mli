(** Distributed algorithms in the locally shared memory model.

    A distributed algorithm (§2.2 of the paper) is a finite set of guarded
    rules [label : guard -> action].  A process evaluates guards over its
    {e view}: its own state plus the states of its neighbors, accessed
    through local labels (indirect naming).  Processes are anonymous — a
    view carries no global identity; algorithms for identified networks
    store the identifier as an immutable field of their own state. *)

type 'state view = {
  state : 'state;  (** the process's own state *)
  nbrs : 'state array;
      (** neighbor states, indexed by local label; do not mutate *)
}

type 'state rule = {
  rule_name : string;  (** used in traces, daemons and tests *)
  guard : 'state view -> bool;
  action : 'state view -> 'state;
}

type 'state t = {
  name : string;
  rules : 'state rule list;
      (** evaluated in order; the first enabled rule is executed.  All
          algorithms in this repository have pairwise mutually exclusive
          rules (Lemma 5), which the test suite checks. *)
  equal : 'state -> 'state -> bool;
  pp : 'state Fmt.t;
}

val view : Ssreset_graph.Graph.t -> 'state array -> int -> 'state view
(** [view g cfg u] builds the view of process [u] in configuration [cfg]. *)

val views : Ssreset_graph.Graph.t -> 'state array -> 'state view array
(** All views of a configuration. *)

val enabled_rule : 'state t -> 'state view -> 'state rule option
(** First enabled rule of a process, if any. *)

val is_enabled : 'state t -> 'state view -> bool

val enabled_processes : 'state t -> Ssreset_graph.Graph.t -> 'state array -> int list
(** Sorted list of enabled processes in a configuration. *)

val is_terminal : 'state t -> Ssreset_graph.Graph.t -> 'state array -> bool
(** No process is enabled. *)

val for_all_views :
  Ssreset_graph.Graph.t -> 'state array -> f:(int -> 'state view -> bool) -> bool
(** Does [f u (view u)] hold for every process?  Used to express
    configuration predicates such as "normal configuration". *)

val exclusive_rules : 'state t -> 'state view -> string list
(** Names of all rules enabled on a view — used by tests to check pairwise
    mutual exclusion (at most one name for every reachable view). *)

(** Small numeric helpers for summarizing experiment measurements. *)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  stddev : float;
}

val summarize : float list -> summary
(** Summary of a sample; all fields are 0 for the empty sample. *)

val summarize_ints : int list -> summary

val max_int_list : int list -> int
(** Maximum of a list of ints, 0 for the empty list. *)

val ratio : int -> int -> float
(** [ratio a b] = a/b as floats; 0 when [b = 0]. *)

val pp_summary : summary Fmt.t
(** "mean=… min=… max=… sd=… (k samples)". *)

open Helpers
module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Metrics = Ssreset_graph.Metrics

let raises_invalid f =
  match f () with
  | exception Graph.Invalid_graph _ -> true
  | exception Invalid_argument _ -> true
  | _ -> false

(* ------------------------------- Graph -------------------------------- *)

let construction_tests =
  [ test "make rejects self-loops" (fun () ->
        check_true "self-loop"
          (raises_invalid (fun () -> Graph.make ~n:3 ~edges:[ (1, 1) ])));
    test "make rejects duplicate edges" (fun () ->
        check_true "duplicate"
          (raises_invalid (fun () ->
               Graph.make ~n:3 ~edges:[ (0, 1); (1, 0) ])));
    test "make rejects out-of-range endpoints" (fun () ->
        check_true "range"
          (raises_invalid (fun () -> Graph.make ~n:3 ~edges:[ (0, 3) ])));
    test "make rejects empty vertex set" (fun () ->
        check_true "n=0" (raises_invalid (fun () -> Graph.make ~n:0 ~edges:[])));
    test "single vertex graph is connected with no edges" (fun () ->
        let g = Graph.make ~n:1 ~edges:[] in
        check_int "n" 1 (Graph.n g);
        check_int "m" 0 (Graph.m g);
        check_true "connected" (Graph.is_connected g));
    test "neighbors are sorted" (fun () ->
        let g = Graph.make ~n:5 ~edges:[ (2, 4); (2, 0); (2, 3); (2, 1) ] in
        check (Alcotest.array Alcotest.int) "sorted" [| 0; 1; 3; 4 |]
          (Graph.neighbors g 2));
    test "degree and max/min degree" (fun () ->
        let g = Gen.star 5 in
        check_int "hub" 4 (Graph.degree g 0);
        check_int "leaf" 1 (Graph.degree g 3);
        check_int "max" 4 (Graph.max_degree g);
        check_int "min" 1 (Graph.min_degree g));
    test "has_edge is symmetric and correct" (fun () ->
        let g = Gen.ring 6 in
        check_true "0-1" (Graph.has_edge g 0 1);
        check_true "1-0" (Graph.has_edge g 1 0);
        check_true "0-5" (Graph.has_edge g 0 5);
        check_false "0-2" (Graph.has_edge g 0 2);
        check_false "0-3" (Graph.has_edge g 0 3));
    test "edges are normalized (u < v) and complete" (fun () ->
        let g = Gen.ring 4 in
        check
          (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
          "edges"
          [ (0, 1); (0, 3); (1, 2); (2, 3) ]
          (Graph.edges g));
    test "label_of inverts neighbors" (fun () ->
        let g = Gen.grid 3 3 in
        for u = 0 to Graph.n g - 1 do
          Array.iteri
            (fun i v -> check_int "label" i (Graph.label_of g u v))
            (Graph.neighbors g u)
        done);
    test "label_of raises on non-neighbor" (fun () ->
        let g = Gen.ring 5 in
        check_true "raises"
          (match Graph.label_of g 0 2 with
          | exception Not_found -> true
          | _ -> false));
    test "fold/exists/for_all neighbors" (fun () ->
        let g = Gen.star 6 in
        check_int "fold sum" 15
          (Graph.fold_neighbors g 0 ~init:0 ~f:( + ));
        check_true "exists" (Graph.exists_neighbor g 0 ~f:(fun v -> v = 3));
        check_false "exists-not" (Graph.exists_neighbor g 0 ~f:(fun v -> v = 0));
        check_true "for_all" (Graph.for_all_neighbors g 0 ~f:(fun v -> v > 0)));
    test "is_connected detects disconnection" (fun () ->
        let g = Graph.make ~n:4 ~edges:[ (0, 1); (2, 3) ] in
        check_false "disconnected" (Graph.is_connected g);
        check_true "connected" (Graph.is_connected (Gen.path 4)));
    test "to_dot mentions every edge" (fun () ->
        let g = Gen.path 3 in
        let dot = Graph.to_dot g in
        check_true "0--1"
          (Astring_like.contains dot "0 -- 1" || Astring_like.contains dot "0 -- 1;");
        check_true "1--2" (Astring_like.contains dot "1 -- 2")) ]

(* ----------------------------- Generators ----------------------------- *)

let generator_tests =
  [ test "ring: n edges, all degree 2, diameter n/2" (fun () ->
        let g = Gen.ring 10 in
        check_int "m" 10 (Graph.m g);
        check_int "maxdeg" 2 (Graph.max_degree g);
        check_int "mindeg" 2 (Graph.min_degree g);
        check_int "diam" 5 (Metrics.diameter g));
    test "ring rejects n < 3" (fun () ->
        check_true "raises" (raises_invalid (fun () -> Gen.ring 2)));
    test "path: n-1 edges, diameter n-1" (fun () ->
        let g = Gen.path 7 in
        check_int "m" 6 (Graph.m g);
        check_int "diam" 6 (Metrics.diameter g);
        check_true "tree" (Metrics.is_tree g));
    test "star: hub degree n-1, diameter 2" (fun () ->
        let g = Gen.star 9 in
        check_int "m" 8 (Graph.m g);
        check_int "hub" 8 (Graph.degree g 0);
        check_int "diam" 2 (Metrics.diameter g));
    test "complete: n(n-1)/2 edges, diameter 1" (fun () ->
        let g = Gen.complete 7 in
        check_int "m" 21 (Graph.m g);
        check_int "diam" 1 (Metrics.diameter g));
    test "complete_bipartite K_{2,3}" (fun () ->
        let g = Gen.complete_bipartite 2 3 in
        check_int "n" 5 (Graph.n g);
        check_int "m" 6 (Graph.m g);
        check_int "deg side a" 3 (Graph.degree g 0);
        check_int "deg side b" 2 (Graph.degree g 4);
        check_true "bipartite" (Metrics.is_bipartite g));
    test "grid: w*h nodes, correct edge count" (fun () ->
        let g = Gen.grid 4 3 in
        check_int "n" 12 (Graph.n g);
        check_int "m" ((3 * 3) + (4 * 2)) (Graph.m g);
        check_int "diam" 5 (Metrics.diameter g));
    test "torus: degree 4 everywhere, 2wh edges" (fun () ->
        let g = Gen.torus 4 3 in
        check_int "n" 12 (Graph.n g);
        check_int "m" 24 (Graph.m g);
        check_int "maxdeg" 4 (Graph.max_degree g);
        check_int "mindeg" 4 (Graph.min_degree g));
    test "torus rejects dims < 3" (fun () ->
        check_true "raises" (raises_invalid (fun () -> Gen.torus 2 5)));
    test "hypercube Q4: 16 nodes, degree 4, diameter 4" (fun () ->
        let g = Gen.hypercube 4 in
        check_int "n" 16 (Graph.n g);
        check_int "m" 32 (Graph.m g);
        check_int "deg" 4 (Graph.max_degree g);
        check_int "diam" 4 (Metrics.diameter g));
    test "binary tree is a tree" (fun () ->
        let g = Gen.binary_tree 11 in
        check_true "tree" (Metrics.is_tree g);
        check_int "root-deg" 2 (Graph.degree g 0));
    test "wheel: hub degree n-1, rim degree 3" (fun () ->
        let g = Gen.wheel 8 in
        check_int "hub" 7 (Graph.degree g 0);
        check_int "rim" 3 (Graph.degree g 3);
        check_int "m" 14 (Graph.m g));
    test "lollipop: clique + path, connected" (fun () ->
        let g = Gen.lollipop 5 4 in
        check_int "n" 9 (Graph.n g);
        check_int "m" (10 + 4) (Graph.m g);
        check_true "connected" (Graph.is_connected g);
        check_int "tip degree" 1 (Graph.degree g 8));
    test "caterpillar: spine with legs" (fun () ->
        let g = Gen.caterpillar 4 2 in
        check_int "n" 12 (Graph.n g);
        check_true "tree" (Metrics.is_tree g));
    test "random_tree is a spanning tree" (fun () ->
        for seed = 1 to 10 do
          let g = Gen.random_tree (rng seed) 20 in
          check_true "tree" (Metrics.is_tree g)
        done);
    test "erdos_renyi always connected, includes a spanning tree" (fun () ->
        for seed = 1 to 10 do
          let g = Gen.erdos_renyi (rng seed) 25 0.05 in
          check_true "connected" (Graph.is_connected g);
          check_true "enough edges" (Graph.m g >= 24)
        done);
    test "erdos_renyi p=1 is complete" (fun () ->
        let g = Gen.erdos_renyi (rng 1) 8 1.0 in
        check_int "m" 28 (Graph.m g));
    test "erdos_renyi p=0 is a tree" (fun () ->
        let g = Gen.erdos_renyi (rng 1) 8 0.0 in
        check_true "tree" (Metrics.is_tree g));
    test "random_connected has exactly m edges and is connected" (fun () ->
        for seed = 1 to 10 do
          let g = Gen.random_connected (rng seed) 15 30 in
          check_int "m" 30 (Graph.m g);
          check_true "connected" (Graph.is_connected g)
        done);
    test "random_connected validates bounds" (fun () ->
        check_true "too few"
          (raises_invalid (fun () -> Gen.random_connected (rng 1) 5 3));
        check_true "too many"
          (raises_invalid (fun () -> Gen.random_connected (rng 1) 5 11)));
    test "random_regular_ish: connected, min degree 2" (fun () ->
        for seed = 1 to 5 do
          let g = Gen.random_regular_ish (rng seed) 20 4 in
          check_true "connected" (Graph.is_connected g);
          check_true "mindeg" (Graph.min_degree g >= 2)
        done) ]

(* ------------------------------- Metrics ------------------------------ *)

let metrics_tests =
  [ test "bfs distances on a path" (fun () ->
        let g = Gen.path 5 in
        check (Alcotest.array Alcotest.int) "dist" [| 0; 1; 2; 3; 4 |]
          (Metrics.bfs_distances g 0));
    test "eccentricity of path endpoints and center" (fun () ->
        let g = Gen.path 5 in
        check_int "end" 4 (Metrics.eccentricity g 0);
        check_int "center" 2 (Metrics.eccentricity g 2));
    test "radius vs diameter" (fun () ->
        let g = Gen.path 9 in
        check_int "diam" 8 (Metrics.diameter g);
        check_int "radius" 4 (Metrics.radius g));
    test "average degree of a ring is 2" (fun () ->
        check (Alcotest.float 0.001) "avg" 2.0
          (Metrics.average_degree (Gen.ring 11)));
    test "cyclomatic number" (fun () ->
        check_int "tree" 0 (Metrics.cyclomatic_number (Gen.path 6));
        check_int "ring" 1 (Metrics.cyclomatic_number (Gen.ring 6));
        check_int "K5" 6 (Metrics.cyclomatic_number (Gen.complete 5)));
    test "girth: ring n has girth n, trees none, cliques 3" (fun () ->
        check (Alcotest.option Alcotest.int) "ring" (Some 7)
          (Metrics.girth (Gen.ring 7));
        check (Alcotest.option Alcotest.int) "tree" None
          (Metrics.girth (Gen.binary_tree 10));
        check (Alcotest.option Alcotest.int) "K4" (Some 3)
          (Metrics.girth (Gen.complete 4));
        check (Alcotest.option Alcotest.int) "grid" (Some 4)
          (Metrics.girth (Gen.grid 3 3)));
    test "bipartite: even ring yes, odd ring no, clique no" (fun () ->
        check_true "C6" (Metrics.is_bipartite (Gen.ring 6));
        check_false "C7" (Metrics.is_bipartite (Gen.ring 7));
        check_false "K3" (Metrics.is_bipartite (Gen.complete 3));
        check_true "tree" (Metrics.is_bipartite (Gen.binary_tree 9));
        check_true "grid" (Metrics.is_bipartite (Gen.grid 4 4)));
    test "degree histogram of a star" (fun () ->
        check
          (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
          "hist"
          [ (1, 5); (5, 1) ]
          (Metrics.degree_histogram (Gen.star 6)));
    test "is_tree" (fun () ->
        check_true "path" (Metrics.is_tree (Gen.path 4));
        check_false "ring" (Metrics.is_tree (Gen.ring 4)));
    test "summary mentions the key quantities" (fun () ->
        let s = Metrics.summary (Gen.ring 6) in
        check_true "n" (Astring_like.contains s "n=6");
        check_true "D" (Astring_like.contains s "D=3")) ]

let () =
  Alcotest.run "graph"
    [ ("construction", construction_tests);
      ("generators", generator_tests);
      ("metrics", metrics_tests) ]

open Helpers
module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Algorithm = Ssreset_sim.Algorithm
module Daemon = Ssreset_sim.Daemon
module Engine = Ssreset_sim.Engine
module Fault = Ssreset_sim.Fault
module Spec = Ssreset_alliance.Spec
module Fga = Ssreset_alliance.Fga
module Checker = Ssreset_alliance.Checker
module Brute = Ssreset_alliance.Brute

(* -------------------------------- Spec --------------------------------- *)

let spec_tests =
  [ test "named instances compute the advertised thresholds" (fun () ->
        let g = Gen.star 6 in
        (* hub degree 5, leaves degree 1 *)
        check_int "domset f" 1 (Spec.dominating_set.Spec.f g 0);
        check_int "domset g" 0 (Spec.dominating_set.Spec.g g 0);
        check_int "offensive hub" 3 (Spec.global_offensive.Spec.f g 0);
        check_int "offensive leaf" 1 (Spec.global_offensive.Spec.f g 1);
        check_int "defensive hub" 3 (Spec.global_defensive.Spec.g g 0);
        check_int "powerful hub f" 3 (Spec.global_powerful.Spec.f g 0);
        check_int "powerful hub g" 3 (Spec.global_powerful.Spec.g g 0);
        check_int "2-dom" 2 ((Spec.k_domination 2).Spec.f g 0);
        check_int "3-tuple f" 3 ((Spec.k_tuple_domination 3).Spec.f g 0);
        check_int "3-tuple g" 2 ((Spec.k_tuple_domination 3).Spec.g g 0));
    test "feasible: degree must dominate max(f,g)" (fun () ->
        let star = Gen.star 5 in
        check_true "domset on star" (Spec.feasible Spec.dominating_set star);
        check_false "2-dom on star (leaves have degree 1)"
          (Spec.feasible (Spec.k_domination 2) star);
        check_true "2-dom on ring"
          (Spec.feasible (Spec.k_domination 2) (Gen.ring 5)));
    test "f_geq_g distinguishes the defensive instance" (fun () ->
        let g = Gen.ring 8 in
        check_true "domset" (Spec.f_geq_g Spec.dominating_set g);
        check_true "offensive" (Spec.f_geq_g Spec.global_offensive g);
        check_false "defensive" (Spec.f_geq_g Spec.global_defensive g));
    test "custom validates non-negativity and all_named count" (fun () ->
        check_true "negative rejected"
          (match Spec.custom ~name:"bad" ~f:(-1) ~g:0 with
          | exception Invalid_argument _ -> true
          | _ -> false);
        check_int "all_named" (4 + 2 + 2)
          (List.length (Spec.all_named ~max_k:2))) ]

(* ------------------------------- Checker ------------------------------- *)

let checker_tests =
  [ test "is_alliance on hand-built sets" (fun () ->
        let g = Gen.ring 6 in
        let spec = Spec.dominating_set in
        check_true "alternating"
          (Checker.is_alliance g spec
             [| true; false; true; false; true; false |]);
        check_false "too sparse"
          (Checker.is_alliance g spec
             [| true; false; false; false; false; false |]);
        check_true "everything" (Checker.is_alliance g spec (Array.make 6 true)));
    test "is_one_minimal accepts exact covers and rejects slack" (fun () ->
        let g = Gen.ring 6 in
        let spec = Spec.dominating_set in
        check_true "alternating is 1-minimal"
          (Checker.is_one_minimal g spec
             [| true; false; true; false; true; false |]);
        check_false "full set is not"
          (Checker.is_one_minimal g spec (Array.make 6 true)));
    test "is_one_minimal does not mutate its argument" (fun () ->
        let g = Gen.ring 4 in
        let set = [| true; false; true; false |] in
        let copy = Array.copy set in
        ignore (Checker.is_one_minimal g Spec.dominating_set set);
        check (Alcotest.array Alcotest.bool) "unchanged" copy set);
    test "count_in, size, members" (fun () ->
        let g = Gen.star 5 in
        let set = [| true; false; true; true; false |] in
        check_int "hub sees 2" 2 (Checker.count_in g set 0);
        check_int "leaf sees hub" 1 (Checker.count_in g set 1);
        check_int "size" 3 (Checker.size set);
        check (Alcotest.list Alcotest.int) "members" [ 0; 2; 3 ]
          (Checker.members set)) ]

(* -------------------------------- Brute -------------------------------- *)

let brute_tests =
  [ test "mask/set conversions roundtrip" (fun () ->
        let set = [| true; false; true; true |] in
        check (Alcotest.array Alcotest.bool) "roundtrip" set
          (Brute.set_of_mask ~n:4 (Brute.mask_of_set set)));
    test "is_alliance_mask agrees with Checker on all sets of an 8-graph"
      (fun () ->
        let g = Gen.erdos_renyi (rng 9) 8 0.4 in
        List.iter
          (fun spec ->
            for mask = 0 to 255 do
              check_bool "agree"
                (Checker.is_alliance g spec (Brute.set_of_mask ~n:8 mask))
                (Brute.is_alliance_mask g spec mask)
            done)
          [ Spec.dominating_set; Spec.global_powerful ]);
    test "every minimal alliance is 1-minimal (Property 1.1)" (fun () ->
        let g = Gen.wheel 6 in
        List.iter
          (fun spec ->
            List.iter
              (fun mask ->
                check_true "1-minimal" (Brute.is_one_minimal_mask g spec mask))
              (Brute.all_minimal g spec))
          [ Spec.dominating_set; Spec.global_defensive ]);
    test "with f ≥ g, 1-minimal implies minimal (Property 1.2)" (fun () ->
        let g = Gen.wheel 6 in
        List.iter
          (fun spec ->
            if Spec.f_geq_g spec g then
              List.iter
                (fun mask ->
                  check_true "minimal" (Brute.is_minimal_mask g spec mask))
                (Brute.all_one_minimal g spec))
          [ Spec.dominating_set; Spec.global_offensive ]);
    test "(0,2) on K4: 1-minimal does not imply minimal" (fun () ->
        let g = Gen.complete 4 in
        let spec = Spec.custom ~name:"(0,2)" ~f:0 ~g:2 in
        check (Alcotest.option Alcotest.int) "minimum" (Some 0)
          (Brute.minimum_size g spec);
        let triangle = Brute.mask_of_set [| true; true; true; false |] in
        check_true "alliance" (Brute.is_alliance_mask g spec triangle);
        check_true "1-minimal" (Brute.is_one_minimal_mask g spec triangle);
        check_false "not minimal" (Brute.is_minimal_mask g spec triangle));
    test "minimum_size matches hand-computed values" (fun () ->
        check (Alcotest.option Alcotest.int) "ring6 domset" (Some 2)
          (Brute.minimum_size (Gen.ring 6) Spec.dominating_set);
        check (Alcotest.option Alcotest.int) "star domset" (Some 1)
          (Brute.minimum_size (Gen.star 6) Spec.dominating_set)) ]

(* ------------------------------ FGA runs ------------------------------- *)

let fga_graphs () =
  [ ("ring8", Gen.ring 8); ("wheel7", Gen.wheel 7);
    ("er10", Gen.erdos_renyi (rng 14) 10 0.4); ("complete6", Gen.complete 6);
    ("grid3x3", Gen.grid 3 3) ]

let fga_specs =
  [ Spec.dominating_set; Spec.global_offensive; Spec.global_defensive;
    Spec.global_powerful ]

let bare_tests =
  [ test "γ_init state and generator respect domains" (fun () ->
        let g = Gen.ring 6 in
        let module F = Fga.Make (struct
          let graph = g
          let spec = Spec.dominating_set
          let ids = None
        end) in
        Array.iteri
          (fun u s ->
            check_int "id" u s.Fga.id;
            check_true "in" s.Fga.col;
            check_int "scr" 1 s.Fga.scr;
            check_true "canQ" s.Fga.can_q;
            check_true "ptr" (s.Fga.ptr = None))
          (F.gamma_init ());
        for seed = 1 to 60 do
          let u = seed mod 6 in
          let s = F.gen (rng seed) u in
          check_int "const id" u s.Fga.id;
          (match s.Fga.ptr with
          | None -> ()
          | Some p ->
              check_true "ptr in closed neighborhood"
                (p = u || Graph.has_edge g u p));
          check_true "scr domain" (s.Fga.scr >= -1 && s.Fga.scr <= 1)
        done);
    test "Make rejects infeasible specs and bad id vectors" (fun () ->
        let g = Gen.star 5 in
        check_true "infeasible"
          (match
             let module F = Fga.Make (struct
               let graph = g
               let spec = Spec.k_domination 2
               let ids = None
             end) in
             F.gamma_init ()
           with
          | exception Invalid_argument _ -> true
          | _ -> false);
        check_true "duplicate ids"
          (match
             let module F = Fga.Make (struct
               let graph = g
               let spec = Spec.dominating_set
               let ids = Some [| 1; 1; 2; 3; 4 |]
             end) in
             F.gamma_init ()
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    test "bare FGA from γ_init terminates at a 1-minimal alliance" (fun () ->
        List.iter
          (fun (name, g) ->
            List.iter
              (fun spec ->
                if Spec.feasible spec g then begin
                  let module F = Fga.Make (struct
                    let graph = g
                    let spec = spec
                    let ids = None
                  end) in
                  List.iter
                    (fun daemon ->
                      let r =
                        run ~seed:5 ~algorithm:F.bare ~graph:g ~daemon
                          (F.gamma_init ())
                      in
                      if r.Engine.outcome <> Engine.Terminal then
                        Alcotest.failf "%s/%s: no termination" name
                          spec.Spec.spec_name;
                      if
                        not
                          (Checker.is_one_minimal g spec
                             (F.alliance r.Engine.final))
                      then
                        Alcotest.failf "%s/%s: not 1-minimal" name
                          spec.Spec.spec_name)
                    (daemons ())
                end)
              fga_specs)
          (fga_graphs ()));
    test "identifier assignment does not affect correctness (permuted ids)"
      (fun () ->
        let g = Gen.erdos_renyi (rng 23) 9 0.4 in
        let ids = Some [| 42; 7; 13; 99; 0; 55; 21; 8; 77 |] in
        List.iter
          (fun spec ->
            let module F = Fga.Make (struct
              let graph = g
              let spec = spec
              let ids = ids
            end) in
            let r =
              run ~seed:2 ~algorithm:F.bare ~graph:g
                ~daemon:Daemon.central_random (F.gamma_init ())
            in
            check_true "terminal" (r.Engine.outcome = Engine.Terminal);
            check_true "1-minimal"
              (Checker.is_one_minimal g spec (F.alliance r.Engine.final)))
          fga_specs);
    test "total moves stay within 16Δm + 36m + 24n (Corollary 11)" (fun () ->
        List.iter
          (fun (name, g) ->
            let bound =
              (16 * Graph.max_degree g * Graph.m g)
              + (36 * Graph.m g) + (24 * Graph.n g)
            in
            let module F = Fga.Make (struct
              let graph = g
              let spec = Spec.dominating_set
              let ids = None
            end) in
            List.iter
              (fun daemon ->
                let r =
                  run ~seed:3 ~algorithm:F.bare ~graph:g ~daemon
                    (F.gamma_init ())
                in
                if r.Engine.moves > bound then
                  Alcotest.failf "%s: %d moves > %d" name r.Engine.moves bound)
              (daemons ()))
          (fga_graphs ()));
    test "FGA rules are mutually exclusive on arbitrary states" (fun () ->
        let g = Gen.erdos_renyi (rng 33) 9 0.4 in
        let module F = Fga.Make (struct
          let graph = g
          let spec = Spec.global_powerful
          let ids = None
        end) in
        for seed = 1 to 50 do
          let cfg = Fault.arbitrary (rng seed) F.gen g in
          for u = 0 to Graph.n g - 1 do
            let enabled =
              Algorithm.exclusive_rules F.bare (Algorithm.view g cfg u)
            in
            if List.length enabled > 1 then
              Alcotest.failf "rules %s enabled together"
                (String.concat "," enabled)
          done
        done);
    test "removals are locally central: at most one Clr per closed \
          neighborhood per step" (fun () ->
        let g = Gen.complete 7 in
        let module F = Fga.Make (struct
          let graph = g
          let spec = Spec.k_tuple_domination 2
          let ids = None
        end) in
        let trace, _ =
          Ssreset_sim.Trace.record ~rng:(rng 4) ~algorithm:F.bare ~graph:g
            ~daemon:Daemon.synchronous (F.gamma_init ())
        in
        List.iter
          (fun entry ->
            let clrs =
              List.filter
                (fun (_, name) -> String.equal name Fga.rule_clr)
                entry.Ssreset_sim.Trace.moved
            in
            (* on a complete graph every pair shares a closed neighborhood:
               at most one removal per step overall *)
            check_true "locally central" (List.length clrs <= 1))
          trace.Ssreset_sim.Trace.entries) ]

(* --------------------------- FGA ∘ SDR runs ---------------------------- *)

let composed_tests =
  [ test "silent self-stabilization: terminal + 1-minimal from arbitrary \
          configurations (Thms 11-13)" (fun () ->
        List.iter
          (fun (name, g) ->
            List.iter
              (fun spec ->
                if Spec.feasible spec g then begin
                  let module F = Fga.Make (struct
                    let graph = g
                    let spec = spec
                    let ids = None
                  end) in
                  let gen =
                    F.Composed.generator ~inner:F.gen ~max_d:(Graph.n g)
                  in
                  List.iter
                    (fun daemon ->
                      let cfg = Fault.arbitrary (rng 6) gen g in
                      let r =
                        run ~seed:7 ~algorithm:F.Composed.algorithm ~graph:g
                          ~daemon cfg
                      in
                      if r.Engine.outcome <> Engine.Terminal then
                        Alcotest.failf "%s/%s: not silent" name
                          spec.Spec.spec_name;
                      if
                        not
                          (Checker.is_one_minimal g spec
                             (F.alliance_of_composed r.Engine.final))
                      then
                        Alcotest.failf "%s/%s: bad output" name
                          spec.Spec.spec_name)
                    (daemons ())
                end)
              fga_specs)
          (fga_graphs ()));
    test "8n+4 round bound holds (Theorem 14)" (fun () ->
        List.iter
          (fun (name, g) ->
            let n = Graph.n g in
            let module F = Fga.Make (struct
              let graph = g
              let spec = Spec.dominating_set
              let ids = None
            end) in
            let gen = F.Composed.generator ~inner:F.gen ~max_d:n in
            List.iter
              (fun daemon ->
                for seed = 1 to 2 do
                  let cfg = Fault.arbitrary (rng (seed * 13)) gen g in
                  let r =
                    run ~seed ~algorithm:F.Composed.algorithm ~graph:g ~daemon
                      cfg
                  in
                  check_true "terminal" (r.Engine.outcome = Engine.Terminal);
                  if r.Engine.rounds > (8 * n) + 4 then
                    Alcotest.failf "%s: %d rounds > 8n+4" name r.Engine.rounds
                done)
              (daemons ()))
          (fga_graphs ())) ]

(* ------------------------ printed-variant regression ------------------- *)

let regression_tests =
  [ test "printed bestPtr can terminate at a non-1-minimal alliance (g > f)"
      (fun () ->
        (* witness found by search: G(7, 0.5) with seed 5, global defensive *)
        let g = Gen.erdos_renyi (rng 5) 7 0.5 in
        let spec = Spec.global_defensive in
        let module F = Fga.Make (struct
          let graph = g
          let spec = spec
          let ids = None
        end) in
        let r =
          run ~seed:1 ~algorithm:F.bare_printed ~graph:g
            ~daemon:Daemon.central_random (F.gamma_init ())
        in
        check_true "terminates" (r.Engine.outcome = Engine.Terminal);
        let set = F.alliance r.Engine.final in
        check_true "is an alliance" (Checker.is_alliance g spec set);
        check_false "but NOT 1-minimal (the printed macro is too strict)"
          (Checker.is_one_minimal g spec set);
        (* the fixed variant solves the same instance correctly *)
        let fixed =
          run ~seed:1 ~algorithm:F.bare ~graph:g ~daemon:Daemon.central_random
            (F.gamma_init ())
        in
        check_true "fixed terminal" (fixed.Engine.outcome = Engine.Terminal);
        check_true "fixed 1-minimal"
          (Checker.is_one_minimal g spec (F.alliance fixed.Engine.final)));
    test "printed and fixed variants agree when f ≥ g everywhere" (fun () ->
        let g = Gen.erdos_renyi (rng 8) 9 0.35 in
        List.iter
          (fun spec ->
            let module F = Fga.Make (struct
              let graph = g
              let spec = spec
              let ids = None
            end) in
            List.iter
              (fun algorithm ->
                let r =
                  run ~seed:4 ~algorithm ~graph:g
                    ~daemon:Daemon.central_random (F.gamma_init ())
                in
                check_true "terminal" (r.Engine.outcome = Engine.Terminal);
                check_true "1-minimal"
                  (Checker.is_one_minimal g spec (F.alliance r.Engine.final)))
              [ F.bare; F.bare_printed ])
          [ Spec.dominating_set; Spec.global_offensive ]) ]

let () =
  Alcotest.run "alliance"
    [ ("spec", spec_tests);
      ("checker", checker_tests);
      ("brute force", brute_tests);
      ("bare FGA", bare_tests);
      ("FGA∘SDR", composed_tests);
      ("printed-variant regression", regression_tests) ]

(* Shared helpers for the test suites. *)

module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Metrics = Ssreset_graph.Metrics
module Algorithm = Ssreset_sim.Algorithm
module Daemon = Ssreset_sim.Daemon
module Engine = Ssreset_sim.Engine
module Fault = Ssreset_sim.Fault
module Trace = Ssreset_sim.Trace
module Sdr = Ssreset_core.Sdr

let rng seed = Random.State.make [| seed |]

let check = Alcotest.check
let check_int msg = check Alcotest.int msg
let check_bool msg = check Alcotest.bool msg
let check_true msg b = check_bool msg true b
let check_false msg b = check_bool msg false b

let test name f = Alcotest.test_case name `Quick f

(* A small deterministic zoo of connected graphs exercising extreme shapes. *)
let graph_zoo () =
  [ ("ring9", Gen.ring 9);
    ("path7", Gen.path 7);
    ("star8", Gen.star 8);
    ("complete6", Gen.complete 6);
    ("grid3x4", Gen.grid 3 4);
    ("lollipop", Gen.lollipop 4 4);
    ("er12", Gen.erdos_renyi (rng 12) 12 0.25);
    ("tree10", Gen.random_tree (rng 10) 10) ]

(* Exhaustive daemon list (fresh round-robin cursor per call). *)
let daemons () = Daemon.all_standard ()

(* Run [algorithm] from [cfg] and return the result. *)
let run ?(seed = 1) ?(max_steps = 5_000_000) ?stop ~algorithm ~graph ~daemon
    cfg =
  Engine.run ~rng:(rng seed) ~max_steps ?stop ~algorithm ~graph ~daemon cfg

(* Check a step-closure property on a recorded trace: [prop u view] must be
   preserved by every step for every process. *)
let closed_along_trace ~graph ~prop trace =
  List.for_all
    (fun (before, after, _moved) ->
      let n = Graph.n graph in
      let rec ok u =
        u >= n
        || (((not (prop u (Algorithm.view graph before u)))
            || prop u (Algorithm.view graph after u))
           && ok (u + 1))
      in
      ok 0)
    (Trace.steps_pairs trace)

(* Sequence membership in the SDR per-segment language of Theorem 4:
   (C + ε)(RB + R + ε)(RF + ε), ignoring non-SDR rules (Corollary 3 allows
   arbitrary input-rule words between C and the broadcast rules). *)
let segment_language_ok names =
  let sdr_only =
    List.filter
      (fun name ->
        String.length name >= 4 && String.equal (String.sub name 0 4) "SDR-")
      names
  in
  match sdr_only with
  | [] | [ _ ] -> (
      match sdr_only with
      | [ x ] -> List.mem x [ "SDR-C"; "SDR-RB"; "SDR-R"; "SDR-RF" ]
      | _ -> true)
  | [ a; b ] ->
      (String.equal a "SDR-C" && List.mem b [ "SDR-RB"; "SDR-R"; "SDR-RF" ])
      || (List.mem a [ "SDR-RB"; "SDR-R" ] && String.equal b "SDR-RF")
  | [ a; b; c ] ->
      String.equal a "SDR-C"
      && List.mem b [ "SDR-RB"; "SDR-R" ]
      && String.equal c "SDR-RF"
  | _ -> false

open Helpers
module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Algorithm = Ssreset_sim.Algorithm
module Daemon = Ssreset_sim.Daemon
module Engine = Ssreset_sim.Engine
module Fault = Ssreset_sim.Fault
module Coloring = Ssreset_coloring.Coloring
module Mis = Ssreset_mis.Mis

(* ------------------------------- coloring ------------------------------ *)

let coloring_tests =
  [ test "γ_init is all-uncolored and the generator respects domains"
      (fun () ->
        let g = Gen.wheel 7 in
        let module C = Coloring.Make (struct
          let graph = g
          let ids = None
        end) in
        check_true "uncolored"
          (Array.for_all (fun s -> s.Coloring.color = None) (C.gamma_init ()));
        for seed = 1 to 50 do
          let u = seed mod 7 in
          let s = C.gen (rng seed) u in
          check_int "id kept" u s.Coloring.id;
          match s.Coloring.color with
          | None -> ()
          | Some c -> check_true "domain" (c >= 0 && c <= Graph.degree g u)
        done);
    test "pick guard: only the max-id uncolored process in a neighborhood"
      (fun () ->
        let g = Gen.path 3 in
        let module C = Coloring.Make (struct
          let graph = g
          let ids = None
        end) in
        let cfg = C.gamma_init () in
        let enabled u = Algorithm.is_enabled C.bare (Algorithm.view g cfg u) in
        (* all uncolored: only process 2 (max id) may pick *)
        check_false "0 blocked" (enabled 0);
        check_false "1 blocked" (enabled 1);
        check_true "2 picks" (enabled 2));
    test "pick chooses the smallest free color" (fun () ->
        let g = Gen.star 4 in
        let module C = Coloring.Make (struct
          let graph = g
          let ids = None
        end) in
        let cfg = C.gamma_init () in
        cfg.(1) <- { cfg.(1) with Coloring.color = Some 0 };
        cfg.(2) <- { cfg.(2) with Coloring.color = Some 1 };
        cfg.(3) <- { cfg.(3) with Coloring.color = Some 0 };
        (* hub sees colors {0, 1}: must pick 2 *)
        match Algorithm.enabled_rule C.bare (Algorithm.view g cfg 0) with
        | Some r ->
            let s = r.Algorithm.action (Algorithm.view g cfg 0) in
            check (Alcotest.option Alcotest.int) "mex" (Some 2) s.Coloring.color
        | None -> Alcotest.fail "hub should be enabled");
    test "bare coloring from γ_init terminates properly on the zoo" (fun () ->
        List.iter
          (fun (name, g) ->
            let module C = Coloring.Make (struct
              let graph = g
              let ids = None
            end) in
            List.iter
              (fun daemon ->
                let r =
                  run ~algorithm:C.bare ~graph:g ~daemon (C.gamma_init ())
                in
                if r.Engine.outcome <> Engine.Terminal then
                  Alcotest.failf "%s: no termination" name;
                if not (C.is_proper (C.coloring r.Engine.final)) then
                  Alcotest.failf "%s: improper coloring" name)
              (daemons ()))
          (graph_zoo ()));
    test "composed coloring is silent self-stabilizing on the zoo" (fun () ->
        List.iter
          (fun (name, g) ->
            let module C = Coloring.Make (struct
              let graph = g
              let ids = None
            end) in
            let gen = C.Composed.generator ~inner:C.gen ~max_d:(Graph.n g) in
            List.iter
              (fun daemon ->
                let cfg = Fault.arbitrary (rng 3) gen g in
                let r = run ~algorithm:C.Composed.algorithm ~graph:g ~daemon cfg in
                if r.Engine.outcome <> Engine.Terminal then
                  Alcotest.failf "%s: not silent" name;
                if
                  not (C.is_proper (C.coloring_of_composed r.Engine.final))
                then Alcotest.failf "%s: improper output" name)
              (daemons ()))
          (graph_zoo ()));
    test "is_proper rejects conflicts, holes and out-of-domain colors"
      (fun () ->
        let g = Gen.path 3 in
        let module C = Coloring.Make (struct
          let graph = g
          let ids = None
        end) in
        check_true "proper" (C.is_proper [| Some 0; Some 1; Some 0 |]);
        check_false "conflict" (C.is_proper [| Some 1; Some 1; Some 0 |]);
        check_false "hole" (C.is_proper [| Some 0; None; Some 0 |]);
        check_false "too large" (C.is_proper [| Some 0; Some 1; Some 5 |]));
    test "at most Δ+1 colors are ever used" (fun () ->
        List.iter
          (fun (name, g) ->
            let module C = Coloring.Make (struct
              let graph = g
              let ids = None
            end) in
            let r =
              run ~algorithm:C.bare ~graph:g ~daemon:Daemon.central_random
                (C.gamma_init ())
            in
            let used = Hashtbl.create 8 in
            Array.iter
              (fun s ->
                match s.Coloring.color with
                | Some c -> Hashtbl.replace used c ()
                | None -> Alcotest.failf "%s: uncolored process" name)
              r.Engine.final;
            if Hashtbl.length used > Graph.max_degree g + 1 then
              Alcotest.failf "%s: %d colors > Δ+1" name (Hashtbl.length used))
          (graph_zoo ())) ]

(* --------------------------------- MIS --------------------------------- *)

let mis_tests =
  [ test "join guard: max-id undecided process with no In neighbor" (fun () ->
        let g = Gen.path 3 in
        let module M = Mis.Make (struct
          let graph = g
          let ids = None
        end) in
        let cfg = M.gamma_init () in
        let rule u =
          Option.map
            (fun (r : Mis.state Algorithm.rule) -> r.Algorithm.rule_name)
            (Algorithm.enabled_rule M.bare (Algorithm.view g cfg u))
        in
        check (Alcotest.option Alcotest.string) "0 blocked" None (rule 0);
        check (Alcotest.option Alcotest.string) "2 joins" (Some Mis.rule_join)
          (rule 2);
        (* once 2 is In, its neighbor 1 must go Out *)
        cfg.(2) <- { cfg.(2) with Mis.m = Mis.In };
        check (Alcotest.option Alcotest.string) "1 leaves" (Some Mis.rule_out)
          (rule 1);
        (* and process 0 becomes the max-id undecided among its neighbors *)
        cfg.(1) <- { cfg.(1) with Mis.m = Mis.Out };
        check (Alcotest.option Alcotest.string) "0 joins" (Some Mis.rule_join)
          (rule 0));
    test "bare MIS from γ_init computes an MIS on the zoo" (fun () ->
        List.iter
          (fun (name, g) ->
            let module M = Mis.Make (struct
              let graph = g
              let ids = None
            end) in
            List.iter
              (fun daemon ->
                let r =
                  run ~algorithm:M.bare ~graph:g ~daemon (M.gamma_init ())
                in
                if r.Engine.outcome <> Engine.Terminal then
                  Alcotest.failf "%s: no termination" name;
                if not (M.is_mis (M.independent_set r.Engine.final)) then
                  Alcotest.failf "%s: not an MIS" name)
              (daemons ()))
          (graph_zoo ()));
    test "composed MIS is silent self-stabilizing on the zoo" (fun () ->
        List.iter
          (fun (name, g) ->
            let module M = Mis.Make (struct
              let graph = g
              let ids = None
            end) in
            let gen = M.Composed.generator ~inner:M.gen ~max_d:(Graph.n g) in
            List.iter
              (fun daemon ->
                let cfg = Fault.arbitrary (rng 4) gen g in
                let r =
                  run ~algorithm:M.Composed.algorithm ~graph:g ~daemon cfg
                in
                if r.Engine.outcome <> Engine.Terminal then
                  Alcotest.failf "%s: not silent" name;
                if
                  not (M.is_mis (M.independent_set_of_composed r.Engine.final))
                then Alcotest.failf "%s: bad output" name)
              (daemons ()))
          (graph_zoo ()));
    test "is_mis rejects dependent and non-maximal sets" (fun () ->
        let g = Gen.path 4 in
        let module M = Mis.Make (struct
          let graph = g
          let ids = None
        end) in
        check_true "alternating" (M.is_mis [| true; false; true; false |]);
        check_false "adjacent pair" (M.is_mis [| true; true; false; false |]);
        check_false "not maximal" (M.is_mis [| true; false; false; false |]);
        check_true "other cover" (M.is_mis [| false; true; false; true |]));
    test "on a star the MIS is either the hub or all leaves" (fun () ->
        let g = Gen.star 7 in
        let module M = Mis.Make (struct
          let graph = g
          let ids = None
        end) in
        let r =
          run ~algorithm:M.bare ~graph:g ~daemon:Daemon.synchronous
            (M.gamma_init ())
        in
        let set = M.independent_set r.Engine.final in
        let leaves = Array.to_list (Array.sub set 1 6) in
        check_true "hub xor leaves"
          ((set.(0) && List.for_all not leaves)
          || ((not set.(0)) && List.for_all Fun.id leaves));
        check_true "mis" (M.is_mis set));
    test "recovery from an inconsistent In-In pair (domino via reset)"
      (fun () ->
        let g = Gen.path 4 in
        let module M = Mis.Make (struct
          let graph = g
          let ids = None
        end) in
        (* adjacent In-In: locally detectable; composed system must repair *)
        let inner =
          [| { Mis.id = 0; m = Mis.In }; { Mis.id = 1; m = Mis.In };
             { Mis.id = 2; m = Mis.Out }; { Mis.id = 3; m = Mis.In } |]
        in
        let cfg = M.Composed.lift inner in
        let r =
          run ~algorithm:M.Composed.algorithm ~graph:g
            ~daemon:Daemon.central_random cfg
        in
        check_true "terminal" (r.Engine.outcome = Engine.Terminal);
        check_true "mis" (M.is_mis (M.independent_set_of_composed r.Engine.final))) ]

let () =
  Alcotest.run "coloring-mis"
    [ ("coloring", coloring_tests); ("mis", mis_tests) ]

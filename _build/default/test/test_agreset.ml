open Helpers
module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Metrics = Ssreset_graph.Metrics
module Algorithm = Ssreset_sim.Algorithm
module Daemon = Ssreset_sim.Daemon
module Engine = Ssreset_sim.Engine
module Fault = Ssreset_sim.Fault
module Agreset = Ssreset_agreset.Agreset

(* AGR needs weak fairness (like the Arora-Gouda original); these are the
   daemons it is specified for. *)
let fair_daemons () =
  [ Daemon.synchronous; Daemon.central_random; Daemon.round_robin ();
    Daemon.distributed_random 0.4; Daemon.distributed_random 0.9;
    Daemon.locally_central_random ]

let structure_tests =
  [ test "lift builds the exact BFS tree and a quiescent wave layer"
      (fun () ->
        let g = Gen.grid 3 3 in
        let module U = Ssreset_unison.Unison.Make (struct
          let k = 20
        end) in
        let module A =
          Agreset.Make
            (U.Input)
            (struct
              let graph = g
              let root = 0
            end)
        in
        let cfg = A.lift (U.gamma_init g) in
        let bfs = Metrics.bfs_distances g 0 in
        Array.iteri
          (fun u s ->
            check_int "dist" bfs.(u) s.Agreset.dist;
            check_true "quiet"
              (s.Agreset.wst = Agreset.N && not s.Agreset.req))
          cfg;
        check_true "normal" (A.is_normal g cfg);
        check_true "tree_ok everywhere"
          (Algorithm.for_all_views g cfg ~f:(fun _ v -> A.tree_ok v));
        check (Alcotest.array Alcotest.int) "inner roundtrip"
          (U.gamma_init g) (A.inner_config cfg));
    test "Make validates the root index" (fun () ->
        let g = Gen.ring 5 in
        let module U = Ssreset_unison.Unison.Make (struct
          let k = 12
        end) in
        check_true "raises"
          (match
             let module Bad =
               Agreset.Make
                 (U.Input)
                 (struct
                   let graph = g
                   let root = 9
                 end)
             in
             Bad.lift (U.gamma_init g)
           with
          | exception Invalid_argument _ -> true
          | _ -> false)) ]

let run_tests =
  [ test "U∘AGR stabilizes from arbitrary configurations under fair daemons"
      (fun () ->
        List.iter
          (fun (name, g) ->
            let n = Graph.n g in
            let module U = Ssreset_unison.Unison.Make (struct
              let k = (2 * n) + 2
            end) in
            let module A =
              Agreset.Make
                (U.Input)
                (struct
                  let graph = g
                  let root = 0
                end)
            in
            let gen = A.generator ~inner:U.clock_gen in
            List.iter
              (fun daemon ->
                for seed = 1 to 2 do
                  let cfg = Fault.arbitrary (rng (seed * 17)) gen g in
                  let r =
                    Engine.run ~rng:(rng seed) ~max_steps:2_000_000
                      ~stop:(A.is_normal g) ~algorithm:A.algorithm ~graph:g
                      ~daemon cfg
                  in
                  if r.Engine.outcome <> Engine.Stabilized then
                    Alcotest.failf "%s under %s did not stabilize" name
                      daemon.Daemon.daemon_name
                done)
              (fair_daemons ()))
          (graph_zoo ()));
    test "the stabilized tree is the true BFS tree" (fun () ->
        let g = Gen.lollipop 4 5 in
        let n = Graph.n g in
        let module U = Ssreset_unison.Unison.Make (struct
          let k = (2 * n) + 2
        end) in
        let module A =
          Agreset.Make
            (U.Input)
            (struct
              let graph = g
              let root = 0
            end)
        in
        let gen = A.generator ~inner:U.clock_gen in
        let cfg = Fault.arbitrary (rng 8) gen g in
        let r =
          Engine.run ~rng:(rng 9) ~max_steps:2_000_000 ~stop:(A.is_normal g)
            ~algorithm:A.algorithm ~graph:g
            ~daemon:(Daemon.distributed_random 0.5) cfg
        in
        check_true "stabilized" (r.Engine.outcome = Engine.Stabilized);
        let bfs = Metrics.bfs_distances g 0 in
        Array.iteri
          (fun u s -> check_int "bfs dist" bfs.(u) s.Agreset.dist)
          r.Engine.final);
    test "after stabilization the unison specification holds" (fun () ->
        let g = Gen.ring 8 in
        let module U = Ssreset_unison.Unison.Make (struct
          let k = 18
        end) in
        let module A =
          Agreset.Make
            (U.Input)
            (struct
              let graph = g
              let root = 0
            end)
        in
        let gen = A.generator ~inner:U.clock_gen in
        let cfg = Fault.arbitrary (rng 4) gen g in
        let r =
          Engine.run ~rng:(rng 5) ~max_steps:2_000_000 ~stop:(A.is_normal g)
            ~algorithm:A.algorithm ~graph:g ~daemon:(Daemon.round_robin ())
            cfg
        in
        check_true "stabilized" (r.Engine.outcome = Engine.Stabilized);
        let violations = ref 0 in
        let observer ~step:_ ~moved:_ cfg =
          if
            not
              (Ssreset_unison.Checker.safety_ok ~k:U.k g (A.inner_config cfg))
          then incr violations
        in
        let suffix =
          Engine.run ~rng:(rng 6) ~max_steps:200 ~observer
            ~algorithm:A.algorithm ~graph:g ~daemon:(Daemon.round_robin ())
            r.Engine.final
        in
        check_true "kept running" (suffix.Engine.steps > 0);
        check_int "safety kept" 0 !violations);
    test "regression: AGR livelocks under the unfair central-first daemon \
          (the weakness SDR eliminates)" (fun () ->
        let g = Gen.ring 9 in
        let module U = Ssreset_unison.Unison.Make (struct
          let k = 20
        end) in
        let module A =
          Agreset.Make
            (U.Input)
            (struct
              let graph = g
              let root = 0
            end)
        in
        let gen = A.generator ~inner:U.clock_gen in
        let cfg = Fault.arbitrary (rng 13) gen g in
        let r =
          Engine.run ~rng:(rng 1) ~max_steps:100_000 ~stop:(A.is_normal g)
            ~algorithm:A.algorithm ~graph:g ~daemon:Daemon.central_first cfg
        in
        check_true "step budget exhausted (livelock)"
          (r.Engine.outcome = Engine.Step_limit);
        (* same instance, same schedule: U∘SDR stabilizes well within 3n *)
        let sdr_gen = U.Composed.generator ~inner:U.clock_gen ~max_d:9 in
        let sdr_cfg = Fault.arbitrary (rng 13) sdr_gen g in
        let sdr =
          Engine.run ~rng:(rng 1) ~max_steps:100_000
            ~stop:(U.Composed.is_normal g) ~algorithm:U.Composed.algorithm
            ~graph:g ~daemon:Daemon.central_first sdr_cfg
        in
        check_true "SDR stabilizes" (sdr.Engine.outcome = Engine.Stabilized);
        check_true "within 3n rounds" (sdr.Engine.rounds <= 27)) ]

let () =
  Alcotest.run "agreset"
    [ ("structure", structure_tests); ("runs", run_tests) ]

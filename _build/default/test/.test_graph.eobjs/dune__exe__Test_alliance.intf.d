test/test_alliance.mli:

test/test_coloring_mis.mli:

test/test_sim.ml: Alcotest Array Fmt Fun Hashtbl Helpers Int List Ssreset_graph Ssreset_sim

test/test_requirements.ml: Alcotest Fmt Helpers Int List Random Ssreset_alliance Ssreset_coloring Ssreset_core Ssreset_graph Ssreset_matching Ssreset_mis Ssreset_sim Ssreset_unison String

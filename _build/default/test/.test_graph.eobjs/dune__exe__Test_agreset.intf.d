test/test_agreset.mli:

test/test_coloring_mis.ml: Alcotest Array Fun Hashtbl Helpers List Option Ssreset_coloring Ssreset_graph Ssreset_mis Ssreset_sim

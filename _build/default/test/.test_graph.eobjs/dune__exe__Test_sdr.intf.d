test/test_sdr.mli:

test/test_agreset.ml: Alcotest Array Helpers List Ssreset_agreset Ssreset_graph Ssreset_sim Ssreset_unison

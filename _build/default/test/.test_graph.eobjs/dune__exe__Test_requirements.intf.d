test/test_requirements.mli:

test/test_graph.ml: Alcotest Array Astring_like Helpers Ssreset_graph

test/test_unison.ml: Alcotest Array Helpers List Option Ssreset_graph Ssreset_sim Ssreset_unison String

test/test_sdr.ml: Alcotest Array Fmt Hashtbl Helpers List Option Ssreset_coloring Ssreset_core Ssreset_graph Ssreset_sim Ssreset_unison String

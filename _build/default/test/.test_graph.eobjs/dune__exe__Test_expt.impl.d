test/test_expt.ml: Alcotest Astring_like Helpers List Ssreset_alliance Ssreset_expt Ssreset_graph Ssreset_sim String

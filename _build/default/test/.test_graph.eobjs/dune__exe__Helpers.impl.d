test/helpers.ml: Alcotest List Random Ssreset_core Ssreset_graph Ssreset_sim String

test/test_alliance.ml: Alcotest Array Helpers List Ssreset_alliance Ssreset_graph Ssreset_sim String

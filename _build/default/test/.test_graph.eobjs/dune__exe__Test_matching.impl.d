test/test_matching.ml: Alcotest Array Helpers List Option Ssreset_graph Ssreset_matching Ssreset_sim String

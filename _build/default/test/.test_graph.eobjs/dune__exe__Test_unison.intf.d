test/test_unison.mli:

(* Minimal substring search used by the test suites (avoids a dependency). *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else if String.equal (String.sub haystack i nn) needle then true
    else at (i + 1)
  in
  nn = 0 || at 0

open Helpers
module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Algorithm = Ssreset_sim.Algorithm
module Daemon = Ssreset_sim.Daemon
module Engine = Ssreset_sim.Engine
module Fault = Ssreset_sim.Fault
module Matching = Ssreset_matching.Matching

let guard_tests =
  [ test "γ_init is pointer-free; generator draws from N(u) ∪ {⊥}" (fun () ->
        let g = Gen.ring 6 in
        let module M = Matching.Make (struct
          let graph = g
          let ids = None
        end) in
        check_true "init"
          (Array.for_all (fun s -> s.Matching.ptr = None) (M.gamma_init ()));
        for seed = 1 to 50 do
          let u = seed mod 6 in
          let s = M.gen (rng seed) u in
          check_int "id" u s.Matching.id;
          match s.Matching.ptr with
          | None -> ()
          | Some p -> check_true "neighbor" (Graph.has_edge g u p)
        done);
    test "larger endpoint proposes to the smaller on a free edge" (fun () ->
        let g = Gen.path 2 in
        let module M = Matching.Make (struct
          let graph = g
          let ids = None
        end) in
        let cfg = M.gamma_init () in
        let rule u =
          Option.map
            (fun (r : Matching.state Algorithm.rule) -> r.Algorithm.rule_name)
            (Algorithm.enabled_rule M.bare (Algorithm.view g cfg u))
        in
        check (Alcotest.option Alcotest.string) "0 waits" None (rule 0);
        check (Alcotest.option Alcotest.string) "1 proposes"
          (Some Matching.rule_propose) (rule 1));
    test "a proposee accepts its smallest proposer" (fun () ->
        (* star: leaves 1, 2 propose to hub 0 *)
        let g = Gen.star 3 in
        let module M = Matching.Make (struct
          let graph = g
          let ids = None
        end) in
        let cfg =
          [| { Matching.id = 0; ptr = None };
             { Matching.id = 1; ptr = Some 0 };
             { Matching.id = 2; ptr = Some 0 } |]
        in
        match Algorithm.enabled_rule M.bare (Algorithm.view g cfg 0) with
        | Some r ->
            check Alcotest.string "accept" Matching.rule_accept
              r.Algorithm.rule_name;
            let s = r.Algorithm.action (Algorithm.view g cfg 0) in
            check (Alcotest.option Alcotest.int) "smallest" (Some 1)
              s.Matching.ptr
        | None -> Alcotest.fail "hub should accept");
    test "a process chained to a taken neighbor withdraws" (fun () ->
        let g = Gen.path 3 in
        let module M = Matching.Make (struct
          let graph = g
          let ids = None
        end) in
        (* 2 proposed to 1, but 1 is matched with 0 *)
        let cfg =
          [| { Matching.id = 0; ptr = Some 1 };
             { Matching.id = 1; ptr = Some 0 };
             { Matching.id = 2; ptr = Some 1 } |]
        in
        match Algorithm.enabled_rule M.bare (Algorithm.view g cfg 2) with
        | Some r ->
            check Alcotest.string "withdraw" Matching.rule_withdraw
              r.Algorithm.rule_name
        | None -> Alcotest.fail "process 2 should withdraw");
    test "matched processes are silent" (fun () ->
        let g = Gen.path 2 in
        let module M = Matching.Make (struct
          let graph = g
          let ids = None
        end) in
        let cfg =
          [| { Matching.id = 0; ptr = Some 1 };
             { Matching.id = 1; ptr = Some 0 } |]
        in
        check_true "terminal" (Algorithm.is_terminal M.bare g cfg));
    test "upward unreciprocated pointers are locally incorrect" (fun () ->
        let g = Gen.ring 4 in
        let module M = Matching.Make (struct
          let graph = g
          let ids = None
        end) in
        (* a pointer cycle 0→1→2→3→0: somewhere a pointer goes upward
           without reciprocation, so at least one process is incorrect and
           the composed system repairs the deadlock *)
        let inner =
          [| { Matching.id = 0; ptr = Some 1 };
             { Matching.id = 1; ptr = Some 2 };
             { Matching.id = 2; ptr = Some 3 };
             { Matching.id = 3; ptr = Some 0 } |]
        in
        (* bare I can only partially repair: processes whose pointer goes
           upward unreciprocated are locally incorrect and frozen (Req 2c) *)
        let bare =
          run ~algorithm:M.bare ~graph:g ~daemon:Daemon.central_random
            (Array.copy inner)
        in
        check_true "bare freezes" (bare.Engine.outcome = Engine.Terminal);
        check_false "frozen remainder is not maximal"
          (M.is_maximal_matching (M.matching bare.Engine.final));
        let r =
          run ~algorithm:M.Composed.algorithm ~graph:g
            ~daemon:Daemon.central_random
            (M.Composed.lift inner)
        in
        check_true "repaired" (r.Engine.outcome = Engine.Terminal);
        check_true "maximal matching"
          (M.is_maximal_matching (M.matching_of_composed r.Engine.final))) ]

let run_tests =
  [ test "bare matching from γ_init is maximal on the zoo, all daemons"
      (fun () ->
        List.iter
          (fun (name, g) ->
            let module M = Matching.Make (struct
              let graph = g
              let ids = None
            end) in
            List.iter
              (fun daemon ->
                for seed = 1 to 2 do
                  let r =
                    run ~seed ~algorithm:M.bare ~graph:g ~daemon
                      (M.gamma_init ())
                  in
                  if r.Engine.outcome <> Engine.Terminal then
                    Alcotest.failf "%s: no termination" name;
                  if not (M.is_maximal_matching (M.matching r.Engine.final))
                  then Alcotest.failf "%s: not maximal" name
                done)
              (daemons ()))
          (graph_zoo ()));
    test "composed matching is silent self-stabilizing on the zoo" (fun () ->
        List.iter
          (fun (name, g) ->
            let module M = Matching.Make (struct
              let graph = g
              let ids = None
            end) in
            let gen = M.Composed.generator ~inner:M.gen ~max_d:(Graph.n g) in
            List.iter
              (fun daemon ->
                let cfg = Fault.arbitrary (rng 11) gen g in
                let r =
                  run ~algorithm:M.Composed.algorithm ~graph:g ~daemon cfg
                in
                if r.Engine.outcome <> Engine.Terminal then
                  Alcotest.failf "%s: not silent" name;
                if
                  not
                    (M.is_maximal_matching
                       (M.matching_of_composed r.Engine.final))
                then Alcotest.failf "%s: bad output" name)
              (daemons ()))
          (graph_zoo ()));
    test "matching rules are mutually exclusive" (fun () ->
        let g = Gen.erdos_renyi (rng 3) 10 0.35 in
        let module M = Matching.Make (struct
          let graph = g
          let ids = None
        end) in
        for seed = 1 to 50 do
          let cfg = Fault.arbitrary (rng seed) M.gen g in
          for u = 0 to Graph.n g - 1 do
            let enabled =
              Algorithm.exclusive_rules M.bare (Algorithm.view g cfg u)
            in
            if List.length enabled > 1 then
              Alcotest.failf "rules %s enabled together"
                (String.concat "," enabled)
          done
        done);
    test "on a path the matching leaves at most every third process alone"
      (fun () ->
        let g = Gen.path 9 in
        let module M = Matching.Make (struct
          let graph = g
          let ids = None
        end) in
        let r =
          run ~algorithm:M.bare ~graph:g ~daemon:Daemon.synchronous
            (M.gamma_init ())
        in
        let pairs = M.matching r.Engine.final in
        check_true "maximal" (M.is_maximal_matching pairs);
        (* a maximal matching on P9 has at least 3 edges *)
        check_true "size" (List.length pairs >= 3));
    test "is_maximal_matching rejects bad pair lists" (fun () ->
        let g = Gen.path 4 in
        let module M = Matching.Make (struct
          let graph = g
          let ids = None
        end) in
        check_true "good" (M.is_maximal_matching [ (0, 1); (2, 3) ]);
        check_false "overlapping" (M.is_maximal_matching [ (0, 1); (1, 2) ]);
        check_false "not maximal" (M.is_maximal_matching [ (0, 1) ]);
        check_false "non-edge" (M.is_maximal_matching [ (0, 3) ])) ]

let () =
  Alcotest.run "matching"
    [ ("guards", guard_tests); ("runs", run_tests) ]

open Helpers
module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Algorithm = Ssreset_sim.Algorithm
module Daemon = Ssreset_sim.Daemon
module Engine = Ssreset_sim.Engine
module Fault = Ssreset_sim.Fault
module Trace = Ssreset_sim.Trace
module Sdr = Ssreset_core.Sdr

(* Most structural tests use U ∘ SDR (a dynamic input algorithm, so the SDR
   layer is exercised from every reachable pattern) and coloring ∘ SDR (a
   static input, so the composition has genuine terminal configurations). *)

module U12 = Ssreset_unison.Unison.Make (struct
  let k = 26
end)

let ugen = U12.Composed.generator ~inner:U12.clock_gen ~max_d:24

let arbitrary_cfg g seed = Fault.arbitrary (rng seed) ugen g

let record_run ?(max_steps = 100_000) g seed daemon =
  let cfg = arbitrary_cfg g seed in
  Trace.record ~rng:(rng (seed + 100)) ~max_steps
    ~stop:(U12.Composed.is_normal g)
    ~algorithm:U12.Composed.algorithm ~graph:g ~daemon cfg

(* ------------------------- state & predicates -------------------------- *)

let basic_tests =
  [ test "lift wraps with status C and inner_config inverts it" (fun () ->
        let cfg = U12.Composed.lift [| 1; 2; 3 |] in
        check_true "st=C" (Array.for_all (fun s -> s.Sdr.st = Sdr.C) cfg);
        check (Alcotest.array Alcotest.int) "inner" [| 1; 2; 3 |]
          (U12.Composed.inner_config cfg));
    test "generator respects the distance domain" (fun () ->
        let gen = U12.Composed.generator ~inner:U12.clock_gen ~max_d:5 in
        for seed = 1 to 50 do
          let s = gen (rng seed) 0 in
          check_true "d in range" (s.Sdr.d >= 0 && s.Sdr.d <= 5);
          check_true "clock in range" (s.Sdr.inner >= 0 && s.Sdr.inner < 26)
        done);
    test "pp_status prints the three statuses" (fun () ->
        check Alcotest.string "C" "C" (Fmt.str "%a" Sdr.pp_status Sdr.C);
        check Alcotest.string "RB" "RB" (Fmt.str "%a" Sdr.pp_status Sdr.RB);
        check Alcotest.string "RF" "RF" (Fmt.str "%a" Sdr.pp_status Sdr.RF));
    test "lifted configuration of a correct input is normal" (fun () ->
        let g = Gen.ring 6 in
        let cfg = U12.Composed.lift (U12.gamma_init g) in
        check_true "normal" (U12.Composed.is_normal g cfg));
    test "a configuration with an RB process is not normal" (fun () ->
        let g = Gen.ring 6 in
        let cfg = U12.Composed.lift (U12.gamma_init g) in
        cfg.(2) <- { cfg.(2) with Sdr.st = Sdr.RB };
        check_false "not normal" (U12.Composed.is_normal g cfg));
    test "p_clean requires the whole closed neighborhood at C" (fun () ->
        let g = Gen.path 3 in
        let cfg = U12.Composed.lift [| 0; 0; 0 |] in
        check_true "clean" (U12.Composed.p_clean (Algorithm.view g cfg 0));
        cfg.(1) <- { cfg.(1) with Sdr.st = Sdr.RF };
        check_false "nbr dirty" (U12.Composed.p_clean (Algorithm.view g cfg 0));
        check_false "other nbr dirty too"
          (U12.Composed.p_clean (Algorithm.view g cfg 2)));
    test "p_up detects a locally incorrect C process" (fun () ->
        let g = Gen.path 2 in
        (* clocks 0 and 5 are more than one increment apart: both incorrect *)
        let cfg = U12.Composed.lift [| 0; 5 |] in
        check_true "p_up 0" (U12.Composed.p_up (Algorithm.view g cfg 0));
        check_true "p_up 1" (U12.Composed.p_up (Algorithm.view g cfg 1));
        check_true "alive root"
          (U12.Composed.is_alive_root (Algorithm.view g cfg 0)));
    test "p_rb fires only next to a broadcasting process" (fun () ->
        let g = Gen.path 3 in
        let cfg = U12.Composed.lift [| 0; 0; 0 |] in
        cfg.(0) <- { Sdr.st = Sdr.RB; d = 0; inner = 0 };
        check_true "p_rb" (U12.Composed.p_rb (Algorithm.view g cfg 1));
        check_false "too far" (U12.Composed.p_rb (Algorithm.view g cfg 2)));
    test "p_rf requires P_reset and all neighbors involved" (fun () ->
        let g = Gen.path 2 in
        let mk st d inner = { Sdr.st; d; inner } in
        let cfg = [| mk Sdr.RB 0 0; mk Sdr.RB 1 0 |] in
        (* the deeper process can feed back; the root cannot (its neighbor
           has a greater distance) *)
        check_true "deep feeds back"
          (U12.Composed.p_rf (Algorithm.view g cfg 1));
        check_false "root waits" (U12.Composed.p_rf (Algorithm.view g cfg 0));
        let cfg2 = [| mk Sdr.RB 0 0; mk Sdr.RB 1 3 |] in
        check_false "needs P_reset"
          (U12.Composed.p_rf (Algorithm.view g cfg2 1)));
    test "p_c pops the feedback from the root downward" (fun () ->
        let g = Gen.path 2 in
        let mk st d inner = { Sdr.st; d; inner } in
        let cfg = [| mk Sdr.RF 0 0; mk Sdr.RF 1 0 |] in
        check_true "root completes" (U12.Composed.p_c (Algorithm.view g cfg 0));
        check_false "deep waits"
          (U12.Composed.p_c (Algorithm.view g cfg 1)));
    test "dead root detection" (fun () ->
        let g = Gen.path 2 in
        let mk st d inner = { Sdr.st; d; inner } in
        let cfg = [| mk Sdr.RF 0 0; mk Sdr.RF 1 0 |] in
        check_true "root is dead root"
          (U12.Composed.is_dead_root (Algorithm.view g cfg 0));
        check_false "deep is not"
          (U12.Composed.is_dead_root (Algorithm.view g cfg 1))) ]

(* ----------------------- mutual exclusion (Lemma 5) -------------------- *)

let exclusion_tests =
  [ test "rules of U∘SDR are pairwise mutually exclusive on random views"
      (fun () ->
        List.iter
          (fun (_, g) ->
            for seed = 1 to 40 do
              let cfg = arbitrary_cfg g seed in
              for u = 0 to Graph.n g - 1 do
                let enabled =
                  Algorithm.exclusive_rules U12.Composed.algorithm
                    (Algorithm.view g cfg u)
                in
                if List.length enabled > 1 then
                  Alcotest.failf "rules %s simultaneously enabled"
                    (String.concat "," enabled)
              done
            done)
          (graph_zoo ())) ]

(* --------------------- terminal ⟺ normal (Theorem 1) ------------------- *)

let coloring_graph = Gen.erdos_renyi (rng 31) 12 0.3

module Col = Ssreset_coloring.Coloring.Make (struct
  let graph = coloring_graph
  let ids = None
end)

let theorem1_tests =
  [ test "terminal configurations of coloring∘SDR are exactly normal ones"
      (fun () ->
        let g = coloring_graph in
        let gen = Col.Composed.generator ~inner:Col.gen ~max_d:24 in
        List.iter
          (fun daemon ->
            for seed = 1 to 5 do
              let cfg = Fault.arbitrary (rng seed) gen g in
              let r =
                run ~seed ~algorithm:Col.Composed.algorithm ~graph:g ~daemon
                  cfg
              in
              check_true "terminal" (r.Engine.outcome = Engine.Terminal);
              check_true "normal" (Col.Composed.is_normal g r.Engine.final);
              check_true "all C"
                (Array.for_all (fun s -> s.Sdr.st = Sdr.C) r.Engine.final)
            done)
          (daemons ()));
    test "normal configurations of the composition are SDR-terminal"
      (fun () ->
        let g = coloring_graph in
        let r =
          run ~algorithm:Col.Composed.algorithm ~graph:g
            ~daemon:Daemon.synchronous
            (Col.Composed.lift (Col.gamma_init ()))
        in
        check_true "terminal" (r.Engine.outcome = Engine.Terminal);
        let cfg = r.Engine.final in
        for u = 0 to Graph.n g - 1 do
          let v = Algorithm.view g cfg u in
          check_false "no RB" (Col.Composed.p_rb v);
          check_false "no RF" (Col.Composed.p_rf v);
          check_false "no C" (Col.Composed.p_c v);
          check_false "no R" (Col.Composed.p_up v)
        done) ]

(* ----------------- closure properties along real traces ---------------- *)

let closure_tests =
  [ test "¬P_Up is closed (Corollary 2)" (fun () ->
        List.iter
          (fun (_, g) ->
            for seed = 1 to 3 do
              let trace, _ = record_run g seed Daemon.central_random in
              check_true "closed"
                (closed_along_trace ~graph:g
                   ~prop:(fun _ v -> not (U12.Composed.p_up v))
                   trace)
            done)
          [ List.nth (graph_zoo ()) 0; List.nth (graph_zoo ()) 6 ]);
    test "P_Correct ∨ P_RB is closed (Theorem 2)" (fun () ->
        List.iter
          (fun (_, g) ->
            for seed = 4 to 6 do
              let trace, _ =
                record_run g seed (Daemon.distributed_random 0.5)
              in
              check_true "closed"
                (closed_along_trace ~graph:g
                   ~prop:(fun _ v ->
                     U12.Composed.p_correct v || U12.Composed.p_rb v)
                   trace)
            done)
          [ List.nth (graph_zoo ()) 1; List.nth (graph_zoo ()) 4 ]);
    test "¬P_R1 and ¬P_R2 are closed (Lemma 6)" (fun () ->
        let g = Gen.erdos_renyi (rng 77) 10 0.3 in
        for seed = 1 to 5 do
          let trace, _ = record_run g seed (Daemon.distributed_random 0.4) in
          check_true "R1"
            (closed_along_trace ~graph:g
               ~prop:(fun _ v -> not (U12.Composed.p_r1 v))
               trace);
          check_true "R2"
            (closed_along_trace ~graph:g
               ~prop:(fun _ v -> not (U12.Composed.p_r2 v))
               trace)
        done);
    test "no alive root is ever created (Theorem 3)" (fun () ->
        List.iter
          (fun (_, g) ->
            for seed = 1 to 4 do
              let trace, _ =
                record_run g seed (Daemon.distributed_random 0.6)
              in
              List.iter
                (fun (before, after, _) ->
                  let before_roots = U12.Composed.alive_roots g before in
                  let after_roots = U12.Composed.alive_roots g after in
                  List.iter
                    (fun u -> check_true "subset" (List.mem u before_roots))
                    after_roots)
                (Trace.steps_pairs trace)
            done)
          (graph_zoo ())) ]

(* --------------------- segments and rule language ---------------------- *)

let segment_tests =
  [ test "executions span at most n+1 segments (Remark 5)" (fun () ->
        List.iter
          (fun (_, g) ->
            List.iter
              (fun daemon ->
                let cfg = arbitrary_cfg g 9 in
                let seg = U12.Composed.Segments.create g cfg in
                let observer = U12.Composed.Segments.observer seg in
                let _ =
                  Engine.run ~rng:(rng 10) ~max_steps:100_000 ~observer
                    ~stop:(U12.Composed.is_normal g)
                    ~algorithm:U12.Composed.algorithm ~graph:g ~daemon cfg
                in
                check_true "segments <= n+1"
                  (U12.Composed.Segments.count seg <= Graph.n g + 1))
              (daemons ()))
          (graph_zoo ()));
    test "alive-root history is non-increasing" (fun () ->
        let g = Gen.lollipop 4 5 in
        let cfg = arbitrary_cfg g 3 in
        let seg = U12.Composed.Segments.create g cfg in
        let observer = U12.Composed.Segments.observer seg in
        let _ =
          Engine.run ~rng:(rng 4) ~max_steps:100_000 ~observer
            ~stop:(U12.Composed.is_normal g)
            ~algorithm:U12.Composed.algorithm ~graph:g
            ~daemon:Daemon.central_random cfg
        in
        let history = U12.Composed.Segments.alive_root_history seg in
        let rec non_increasing = function
          | a :: (b :: _ as rest) -> a >= b && non_increasing rest
          | _ -> true
        in
        check_true "non-increasing" (non_increasing history));
    test "per-segment SDR rule words match Theorem 4's language" (fun () ->
        List.iter
          (fun (_, g) ->
            for seed = 11 to 13 do
              let trace, _ =
                record_run g seed (Daemon.distributed_random 0.5)
              in
              (* split the trace at segment boundaries (alive-root count
                 decreases), then check each process's SDR word per segment *)
              let boundaries = ref [] in
              let prev =
                ref (U12.Composed.count_alive_roots g trace.Trace.initial)
              in
              List.iteri
                (fun i entry ->
                  let c =
                    U12.Composed.count_alive_roots g entry.Trace.config
                  in
                  if c < !prev then boundaries := i :: !boundaries;
                  prev := c)
                trace.Trace.entries;
              let boundaries = List.rev !boundaries in
              let segment_of i =
                let rec count acc = function
                  | [] -> acc
                  | b :: rest -> if i > b then count (acc + 1) rest else acc
                in
                count 0 boundaries
              in
              let words = Hashtbl.create 16 in
              List.iteri
                (fun i entry ->
                  List.iter
                    (fun (u, name) ->
                      let key = (u, segment_of i) in
                      Hashtbl.replace words key
                        (name
                        :: Option.value ~default:[]
                             (Hashtbl.find_opt words key)))
                    entry.Trace.moved)
                trace.Trace.entries;
              Hashtbl.iter
                (fun (u, s) rev_word ->
                  let word = List.rev rev_word in
                  if not (segment_language_ok word) then
                    Alcotest.failf
                      "process %d, segment %d: illegal SDR word %s" u s
                      (String.concat " " word))
                words
            done)
          [ List.nth (graph_zoo ()) 0; List.nth (graph_zoo ()) 5 ]) ]

(* ------------------------- convergence bounds -------------------------- *)

let convergence_tests =
  [ test "3n-round and (3n+3)-move bounds hold on the zoo (Cor 4-5)"
      (fun () ->
        List.iter
          (fun (name, g) ->
            let n = Graph.n g in
            List.iter
              (fun daemon ->
                for seed = 1 to 2 do
                  let cfg = arbitrary_cfg g (seed * 7) in
                  let per_proc_sdr = Array.make n 0 in
                  let observer ~step:_ ~moved _ =
                    List.iter
                      (fun (u, rule) ->
                        if
                          String.length rule >= 4
                          && String.equal (String.sub rule 0 4) "SDR-"
                        then per_proc_sdr.(u) <- per_proc_sdr.(u) + 1)
                      moved
                  in
                  let r =
                    Engine.run ~rng:(rng seed) ~max_steps:200_000 ~observer
                      ~stop:(U12.Composed.is_normal g)
                      ~algorithm:U12.Composed.algorithm ~graph:g ~daemon cfg
                  in
                  if r.Engine.outcome <> Engine.Stabilized then
                    Alcotest.failf "%s under %s did not stabilize" name
                      daemon.Daemon.daemon_name;
                  if r.Engine.rounds > 3 * n then
                    Alcotest.failf "%s: %d rounds > 3n" name r.Engine.rounds;
                  Array.iteri
                    (fun u c ->
                      if c > (3 * n) + 3 then
                        Alcotest.failf "%s: process %d made %d SDR moves"
                          name u c)
                    per_proc_sdr
                done)
              (daemons ()))
          (graph_zoo ()));
    test "after one synchronous step no process satisfies P_Up (Lemma 11)"
      (fun () ->
        List.iter
          (fun (_, g) ->
            for seed = 20 to 24 do
              let cfg = arbitrary_cfg g seed in
              match
                Engine.step ~rng:(rng seed) ~algorithm:U12.Composed.algorithm
                  ~graph:g ~daemon:Daemon.synchronous ~step_index:0 cfg
              with
              | None -> ()
              | Some (next, _) ->
                  for u = 0 to Graph.n g - 1 do
                    check_false "P_Up gone"
                      (U12.Composed.p_up (Algorithm.view g next u))
                  done
            done)
          (graph_zoo ())) ]

let () =
  Alcotest.run "sdr"
    [ ("state and predicates", basic_tests);
      ("mutual exclusion", exclusion_tests);
      ("theorem 1", theorem1_tests);
      ("closure", closure_tests);
      ("segments", segment_tests);
      ("convergence", convergence_tests) ]

(* Property-based tests (QCheck, registered as alcotest cases).

   The properties quantify over random graphs, random configurations,
   random daemons and random schedules — the same adversary space as the
   paper's theorems, sampled. *)

module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Metrics = Ssreset_graph.Metrics
module Algorithm = Ssreset_sim.Algorithm
module Daemon = Ssreset_sim.Daemon
module Engine = Ssreset_sim.Engine
module Fault = Ssreset_sim.Fault
module Trace = Ssreset_sim.Trace
module Spec = Ssreset_alliance.Spec
module Checker = Ssreset_alliance.Checker
module Brute = Ssreset_alliance.Brute

let rng seed = Random.State.make [| seed |]

(* ------------------------------ generators ----------------------------- *)

(* A random connected graph described by (shape, n, seed) — kept as a
   first-class value so shrinking stays meaningful. *)
let graph_gen =
  QCheck2.Gen.(
    let* shape = int_range 0 4 in
    let* n = int_range 4 14 in
    let* seed = int_range 1 1000 in
    return
      (match shape with
      | 0 -> Gen.ring (max 4 n)
      | 1 -> Gen.path n
      | 2 -> Gen.star n
      | 3 -> Gen.random_tree (rng seed) n
      | _ -> Gen.erdos_renyi (rng seed) n 0.3))

let daemon_of_index i =
  match i mod 6 with
  | 0 -> Daemon.synchronous
  | 1 -> Daemon.central_random
  | 2 -> Daemon.central_first
  | 3 -> Daemon.distributed_random 0.4
  | 4 -> Daemon.locally_central_random
  | _ -> Daemon.round_robin ()

let make_test ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)

(* ----------------------------- graph properties ------------------------ *)

let graph_props =
  [ make_test "generated graphs are simple connected" graph_gen (fun g ->
        Graph.is_connected g
        && Graph.m g
           = List.length (Graph.edges g)
        && List.for_all (fun (u, v) -> u < v) (Graph.edges g));
    make_test "handshake: sum of degrees = 2m" graph_gen (fun g ->
        let sum = ref 0 in
        for u = 0 to Graph.n g - 1 do
          sum := !sum + Graph.degree g u
        done;
        !sum = 2 * Graph.m g);
    make_test "diameter bounds: D <= n-1 and radius <= D <= 2·radius"
      graph_gen (fun g ->
        let d = Metrics.diameter g and r = Metrics.radius g in
        d <= Graph.n g - 1 && r <= d && d <= 2 * r);
    make_test "bfs distances satisfy the triangle step" graph_gen (fun g ->
        let dist = Metrics.bfs_distances g 0 in
        List.for_all
          (fun (u, v) -> abs (dist.(u) - dist.(v)) <= 1)
          (Graph.edges g)) ]

(* ----------------------------- engine properties ----------------------- *)

(* Replay: the engine's steps must be exactly "apply the named rule of each
   activated process to the pre-step view". *)
let engine_props =
  [ make_test "trace replay reproduces every configuration"
      QCheck2.Gen.(pair graph_gen (int_range 1 1000))
      (fun (g, seed) ->
        let module U = Ssreset_unison.Unison.Make (struct
          let k = 40
        end) in
        let gen = U.Composed.generator ~inner:U.clock_gen ~max_d:10 in
        let cfg = Fault.arbitrary (rng seed) gen g in
        let trace, _ =
          Trace.record ~rng:(rng (seed + 1)) ~max_steps:60
            ~algorithm:U.Composed.algorithm ~graph:g
            ~daemon:(daemon_of_index seed) cfg
        in
        List.for_all
          (fun (before, after, moved) ->
            let expected = Array.copy before in
            List.iter
              (fun (u, name) ->
                let rule =
                  List.find
                    (fun (r : _ Algorithm.rule) ->
                      String.equal r.Algorithm.rule_name name)
                    U.Composed.algorithm.Algorithm.rules
                in
                expected.(u) <-
                  rule.Algorithm.action (Algorithm.view g before u))
              moved;
            Array.for_all2
              (fun a b -> U.Composed.algorithm.Algorithm.equal a b)
              expected after)
          (Trace.steps_pairs trace));
    make_test "rounds <= steps <= moves on every run"
      QCheck2.Gen.(pair graph_gen (int_range 1 1000))
      (fun (g, seed) ->
        let module U = Ssreset_unison.Unison.Make (struct
          let k = 40
        end) in
        let gen = U.Composed.generator ~inner:U.clock_gen ~max_d:10 in
        let cfg = Fault.arbitrary (rng seed) gen g in
        let r =
          Engine.run ~rng:(rng (seed + 2)) ~max_steps:300
            ~algorithm:U.Composed.algorithm ~graph:g
            ~daemon:(daemon_of_index (seed + 1)) cfg
        in
        r.Engine.rounds <= r.Engine.steps
        && r.Engine.steps <= r.Engine.moves
        && Array.fold_left ( + ) 0 r.Engine.moves_per_process
           = r.Engine.moves
        && List.fold_left (fun a (_, c) -> a + c) 0 r.Engine.moves_per_rule
           = r.Engine.moves) ]

(* ------------------------------ SDR properties ------------------------- *)

let sdr_props =
  [ make_test "U∘SDR stabilizes within 3n rounds from any configuration"
      QCheck2.Gen.(pair graph_gen (int_range 1 1000))
      (fun (g, seed) ->
        let n = Graph.n g in
        let module U = Ssreset_unison.Unison.Make (struct
          let k = (2 * n) + 2
        end) in
        let gen = U.Composed.generator ~inner:U.clock_gen ~max_d:n in
        let cfg = Fault.arbitrary (rng seed) gen g in
        let r =
          Engine.run ~rng:(rng (seed + 3)) ~max_steps:200_000
            ~stop:(U.Composed.is_normal g)
            ~algorithm:U.Composed.algorithm ~graph:g
            ~daemon:(daemon_of_index seed) cfg
        in
        r.Engine.outcome = Engine.Stabilized && r.Engine.rounds <= 3 * n);
    make_test "alive-root sets only shrink (Theorem 3)"
      QCheck2.Gen.(pair graph_gen (int_range 1 1000))
      (fun (g, seed) ->
        let module U = Ssreset_unison.Unison.Make (struct
          let k = 40
        end) in
        let gen = U.Composed.generator ~inner:U.clock_gen ~max_d:8 in
        let cfg = Fault.arbitrary (rng seed) gen g in
        let trace, _ =
          Trace.record ~rng:(rng (seed + 4)) ~max_steps:80
            ~algorithm:U.Composed.algorithm ~graph:g
            ~daemon:(daemon_of_index (seed + 2)) cfg
        in
        List.for_all
          (fun (before, after, _) ->
            let broots = U.Composed.alive_roots g before in
            List.for_all
              (fun u -> List.mem u broots)
              (U.Composed.alive_roots g after))
          (Trace.steps_pairs trace)) ]

(* ---------------------------- unison properties ------------------------ *)

let unison_props =
  [ make_test "unison safety is closed from γ_init (any schedule)"
      QCheck2.Gen.(pair graph_gen (int_range 1 1000))
      (fun (g, seed) ->
        let n = Graph.n g in
        let module U = Ssreset_unison.Unison.Make (struct
          let k = n + 1
        end) in
        let ok = ref true in
        let observer ~step:_ ~moved:_ cfg =
          if not (Ssreset_unison.Checker.safety_ok ~k:U.k g cfg) then
            ok := false
        in
        let _ =
          Engine.run ~rng:(rng seed) ~max_steps:(20 * n) ~observer
            ~algorithm:U.bare ~graph:g ~daemon:(daemon_of_index seed)
            (U.gamma_init g)
        in
        !ok) ]

(* --------------------------- alliance properties ----------------------- *)

let small_graph_gen =
  QCheck2.Gen.(
    let* n = int_range 4 9 in
    let* seed = int_range 1 500 in
    return (Gen.erdos_renyi (rng seed) n 0.45))

let alliance_props =
  [ make_test ~count:40 "FGA∘SDR silent + 1-minimal on random instances"
      QCheck2.Gen.(pair small_graph_gen (int_range 0 3))
      (fun (g, which) ->
        let spec =
          List.nth
            [ Spec.dominating_set; Spec.global_offensive;
              Spec.global_defensive; Spec.global_powerful ]
            which
        in
        (not (Spec.feasible spec g))
        ||
        let module F = Ssreset_alliance.Fga.Make (struct
          let graph = g
          let spec = spec
          let ids = None
        end) in
        let gen = F.Composed.generator ~inner:F.gen ~max_d:(Graph.n g) in
        let cfg = Fault.arbitrary (rng 11) gen g in
        let r =
          Engine.run ~rng:(rng 12) ~max_steps:500_000
            ~algorithm:F.Composed.algorithm ~graph:g
            ~daemon:(daemon_of_index which) cfg
        in
        r.Engine.outcome = Engine.Terminal
        && Checker.is_one_minimal g spec
             (F.alliance_of_composed r.Engine.final));
    make_test ~count:30 "FGA output is among the brute-force 1-minimal sets"
      QCheck2.Gen.(int_range 1 300)
      (fun seed ->
        let g = Gen.erdos_renyi (rng seed) 7 0.5 in
        let spec = Spec.dominating_set in
        let module F = Ssreset_alliance.Fga.Make (struct
          let graph = g
          let spec = spec
          let ids = None
        end) in
        let r =
          Engine.run ~rng:(rng (seed + 5)) ~max_steps:200_000
            ~algorithm:F.bare ~graph:g ~daemon:(daemon_of_index seed)
            (F.gamma_init ())
        in
        r.Engine.outcome = Engine.Terminal
        && List.mem
             (Brute.mask_of_set (F.alliance r.Engine.final))
             (Brute.all_one_minimal g spec)) ]

(* --------------------------- matching properties ----------------------- *)

let matching_props =
  [ make_test ~count:40 "matching∘SDR silent + maximal on random instances"
      QCheck2.Gen.(pair graph_gen (int_range 1 1000))
      (fun (g, seed) ->
        let module M = Ssreset_matching.Matching.Make (struct
          let graph = g
          let ids = None
        end) in
        let gen = M.Composed.generator ~inner:M.gen ~max_d:(Graph.n g) in
        let cfg = Fault.arbitrary (rng seed) gen g in
        let r =
          Engine.run ~rng:(rng (seed + 6)) ~max_steps:500_000
            ~algorithm:M.Composed.algorithm ~graph:g
            ~daemon:(daemon_of_index seed) cfg
        in
        r.Engine.outcome = Engine.Terminal
        && M.is_maximal_matching (M.matching_of_composed r.Engine.final));
    make_test ~count:40 "matched pairs never unmatch along bare runs"
      QCheck2.Gen.(pair graph_gen (int_range 1 1000))
      (fun (g, seed) ->
        let module M = Ssreset_matching.Matching.Make (struct
          let graph = g
          let ids = None
        end) in
        let trace, _ =
          Trace.record ~rng:(rng seed) ~max_steps:200 ~algorithm:M.bare
            ~graph:g ~daemon:(daemon_of_index (seed + 3))
            (M.gamma_init ())
        in
        List.for_all
          (fun (before, after, _) ->
            List.for_all
              (fun pair -> List.mem pair (M.matching after))
              (M.matching before))
          (Trace.steps_pairs trace)) ]

(* ------------------------- coloring/mis properties --------------------- *)

let static_props =
  [ make_test ~count:40 "coloring∘SDR silent + proper on random instances"
      QCheck2.Gen.(pair graph_gen (int_range 1 1000))
      (fun (g, seed) ->
        let module C = Ssreset_coloring.Coloring.Make (struct
          let graph = g
          let ids = None
        end) in
        let gen = C.Composed.generator ~inner:C.gen ~max_d:(Graph.n g) in
        let cfg = Fault.arbitrary (rng seed) gen g in
        let r =
          Engine.run ~rng:(rng (seed + 7)) ~max_steps:500_000
            ~algorithm:C.Composed.algorithm ~graph:g
            ~daemon:(daemon_of_index (seed + 1)) cfg
        in
        r.Engine.outcome = Engine.Terminal
        && C.is_proper (C.coloring_of_composed r.Engine.final));
    make_test ~count:40 "colors never change once the configuration is normal"
      QCheck2.Gen.(pair graph_gen (int_range 1 1000))
      (fun (g, seed) ->
        (* silence: from a normal configuration the composition is terminal *)
        let module C = Ssreset_coloring.Coloring.Make (struct
          let graph = g
          let ids = None
        end) in
        let r =
          Engine.run ~rng:(rng seed) ~max_steps:500_000
            ~algorithm:C.Composed.algorithm ~graph:g
            ~daemon:(daemon_of_index seed)
            (C.Composed.lift (C.gamma_init ()))
        in
        r.Engine.outcome = Engine.Terminal
        && Ssreset_sim.Algorithm.is_terminal C.Composed.algorithm g
             r.Engine.final) ]

(* ------------------------ checker cross-validation --------------------- *)

let checker_props =
  [ make_test ~count:40 "Checker.is_one_minimal agrees with the brute force"
      QCheck2.Gen.(pair (int_range 1 400) (int_range 0 255))
      (fun (seed, mask) ->
        let g = Gen.erdos_renyi (rng seed) 8 0.4 in
        let spec = Spec.global_powerful in
        Checker.is_one_minimal g spec (Brute.set_of_mask ~n:8 mask)
        = Brute.is_one_minimal_mask g spec mask) ]

(* --------------------------- baseline properties ----------------------- *)

let baseline_props =
  [ make_test ~count:40 "tail-unison legitimacy matches safety + ring values"
      QCheck2.Gen.(pair graph_gen (int_range 1 1000))
      (fun (g, seed) ->
        let n = Graph.n g in
        let module T = Ssreset_unison.Tail_unison.Make (struct
          let k = (2 * n) + 2
          let alpha = n
        end) in
        let cfg = Fault.arbitrary (rng seed) T.clock_gen g in
        let legit = T.is_legitimate g cfg in
        let by_hand =
          Array.for_all (fun c -> c >= 0) cfg
          && Ssreset_unison.Checker.safety_ok ~k:T.k g cfg
        in
        legit = by_hand) ]

let () =
  Alcotest.run "properties"
    [ ("graph", graph_props);
      ("engine", engine_props);
      ("sdr", sdr_props);
      ("unison", unison_props);
      ("alliance", alliance_props);
      ("matching", matching_props);
      ("static instantiations", static_props);
      ("checker cross-validation", checker_props);
      ("baselines", baseline_props) ]

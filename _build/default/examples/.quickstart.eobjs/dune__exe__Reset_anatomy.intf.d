examples/reset_anatomy.mli:

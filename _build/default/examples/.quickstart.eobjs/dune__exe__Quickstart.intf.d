examples/quickstart.mli:

examples/fault_recovery.ml: Array Fmt List Random Ssreset_graph Ssreset_mis Ssreset_sim

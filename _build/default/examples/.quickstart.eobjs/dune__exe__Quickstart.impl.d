examples/quickstart.ml: Array Fmt Random Ssreset_graph Ssreset_sim Ssreset_unison

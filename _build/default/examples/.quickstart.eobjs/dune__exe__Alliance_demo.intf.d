examples/alliance_demo.mli:

examples/alliance_demo.ml: Fmt List Random Ssreset_alliance Ssreset_graph Ssreset_sim

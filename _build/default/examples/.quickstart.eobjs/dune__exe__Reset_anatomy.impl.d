examples/reset_anatomy.ml: Array Fmt List Printf Random Ssreset_core Ssreset_graph Ssreset_sim Ssreset_unison

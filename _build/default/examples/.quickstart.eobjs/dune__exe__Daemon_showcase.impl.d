examples/daemon_showcase.ml: Fmt List Random Ssreset_coloring Ssreset_graph Ssreset_sim

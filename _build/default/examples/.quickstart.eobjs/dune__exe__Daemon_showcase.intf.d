examples/daemon_showcase.mli:

(* Fault recovery: repeated transient fault bursts against a stabilized
   system.

   A 24-process torus runs MIS ∘ SDR.  After it first stabilizes we
   repeatedly corrupt a random subset of processes (a transient-fault burst)
   and measure how the cooperative reset brings the system back: resets stay
   partial (only a fraction of processes execute reset moves when the burst
   is small), and the output is a fresh correct MIS every time.

   Run with: dune exec examples/fault_recovery.exe *)

module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Engine = Ssreset_sim.Engine
module Daemon = Ssreset_sim.Daemon
module Fault = Ssreset_sim.Fault

let () =
  let graph = Gen.torus 6 4 in
  let n = Graph.n graph in
  let module M = Ssreset_mis.Mis.Make (struct
    let graph = graph
    let ids = None
  end) in
  let rng = Random.State.make [| 13 |] in
  let gen = M.Composed.generator ~inner:M.gen ~max_d:n in

  let stabilize cfg =
    Engine.run ~rng ~algorithm:M.Composed.algorithm ~graph
      ~daemon:(Daemon.distributed_random 0.5)
      cfg
  in

  (* Initial convergence from a fully arbitrary configuration. *)
  let result = stabilize (Fault.arbitrary rng gen graph) in
  assert (result.Engine.outcome = Engine.Terminal);
  Fmt.pr "initial convergence: %d rounds, %d moves, MIS ok=%b@."
    result.Engine.rounds result.Engine.moves
    (M.is_mis (M.independent_set_of_composed result.Engine.final));

  let current = ref result.Engine.final in
  List.iter
    (fun burst ->
      let faulty = Fault.corrupt rng gen ~k:burst !current in
      let recovery = stabilize faulty in
      assert (recovery.Engine.outcome = Engine.Terminal);
      let resets =
        Engine.moves_of_rules recovery.Engine.moves_per_rule
          ~prefixes:[ "SDR-" ]
      in
      let touched =
        Array.fold_left
          (fun acc c -> if c > 0 then acc + 1 else acc)
          0 recovery.Engine.moves_per_process
      in
      Fmt.pr
        "burst of %2d faults -> recovered in %2d rounds, %3d moves (%3d \
         reset moves, %2d/%d processes moved), MIS ok=%b@."
        burst recovery.Engine.rounds recovery.Engine.moves resets touched n
        (M.is_mis (M.independent_set_of_composed recovery.Engine.final));
      current := recovery.Engine.final)
    [ 1; 1; 2; 4; 8; 16; n ]

(* Daemon showcase: the same system under every scheduling adversary.

   The distributed unfair daemon is the weakest assumption of the model:
   every daemon below is one of its instances, so the paper's bounds must
   hold under each.  This example runs coloring ∘ SDR on a lollipop graph
   (clique + path: high degree and high diameter at once) under the whole
   daemon zoo and prints a comparison, including a short execution trace
   under the central daemon.

   Run with: dune exec examples/daemon_showcase.exe *)

module Graph = Ssreset_graph.Graph
module Gen = Ssreset_graph.Gen
module Engine = Ssreset_sim.Engine
module Daemon = Ssreset_sim.Daemon
module Fault = Ssreset_sim.Fault
module Trace = Ssreset_sim.Trace

let () =
  let graph = Gen.lollipop 6 6 in
  let n = Graph.n graph in
  let module C = Ssreset_coloring.Coloring.Make (struct
    let graph = graph
    let ids = None
  end) in
  let gen = C.Composed.generator ~inner:C.gen ~max_d:n in

  Fmt.pr "coloring∘SDR on lollipop(6,6), arbitrary initial configuration@.@.";
  Fmt.pr "%-28s %10s %10s %10s %8s@." "daemon" "rounds" "steps" "moves" "proper";
  List.iter
    (fun daemon ->
      let cfg = Fault.arbitrary (Random.State.make [| 5 |]) gen graph in
      let result =
        Engine.run
          ~rng:(Random.State.make [| 6 |])
          ~algorithm:C.Composed.algorithm ~graph ~daemon cfg
      in
      Fmt.pr "%-28s %10d %10d %10d %8b@." daemon.Daemon.daemon_name
        result.Engine.rounds result.Engine.steps result.Engine.moves
        (C.is_proper (C.coloring_of_composed result.Engine.final)))
    (Daemon.all_standard ());

  (* A full trace under the central daemon, small enough to read. *)
  Fmt.pr "@.trace under central-first (first 25 steps):@.";
  let cfg = Fault.arbitrary (Random.State.make [| 5 |]) gen graph in
  let trace, _ =
    Trace.record
      ~rng:(Random.State.make [| 6 |])
      ~algorithm:C.Composed.algorithm ~graph ~daemon:Daemon.central_first cfg
  in
  Fmt.pr "%a@."
    (Trace.pp ~pp_state:C.Composed.algorithm.pp ~max_entries:25 ())
    trace

(* ssreset — command-line driver for the reproduction.

   Subcommands run one system on one network under one daemon and print the
   stabilization statistics; `experiments` regenerates the full table suite
   (same as bench/main.exe).  Every run subcommand accepts `--json` (emit
   the observation as a JSON object on stdout) and `--trace-out FILE`
   (stream a JSONL run trace: manifest, per-round snapshots, summary). *)

open Cmdliner

module Graph = Ssreset_graph.Graph
module Metrics = Ssreset_graph.Metrics
module Daemon = Ssreset_sim.Daemon
module Spec = Ssreset_alliance.Spec
module Runner = Ssreset_expt.Runner
module Workload = Ssreset_expt.Workload
module Json = Ssreset_obs.Json
module Sink = Ssreset_obs.Sink
module Prof = Ssreset_obs.Prof
module Proffile = Ssreset_obs.Proffile
module Span = Ssreset_obs.Span
module Tracefile = Ssreset_obs.Tracefile
module Causality = Ssreset_obs.Causality
module Registry = Ssreset_check.Registry
module Report = Ssreset_check.Report
module Csr = Ssreset_graph.Csr
module Engine = Ssreset_sim.Engine
module Stats = Ssreset_sim.Stats
module Flat = Ssreset_flat.Flat
module FlatProgs = Ssreset_flat.Progs

(* ---------------------------- common options ---------------------------- *)

let family_conv =
  let families =
    [ ("ring", Workload.ring); ("path", Workload.path); ("star", Workload.star);
      ("complete", Workload.complete); ("grid", Workload.grid);
      ("binary-tree", Workload.binary_tree); ("random-tree", Workload.random_tree);
      ("sparse-random", Workload.sparse_random); ("lollipop", Workload.lollipop);
      ("er", Workload.erdos_renyi 0.2) ]
  in
  let parse s =
    match List.assoc_opt s families with
    | Some f -> Ok f
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown family %S (one of: %s)" s
               (String.concat ", " (List.map fst families))))
  in
  let print ppf (f : Workload.family) =
    Format.pp_print_string ppf f.Workload.family_name
  in
  Arg.conv (parse, print)

let family =
  Arg.(
    value
    & opt family_conv Workload.ring
    & info [ "g"; "family" ] ~docv:"FAMILY"
        ~doc:"Graph family (ring, path, star, complete, grid, binary-tree, \
              random-tree, sparse-random, lollipop, er).")

let size =
  Arg.(
    value & opt int 16
    & info [ "n"; "size" ] ~docv:"N" ~doc:"Number of processes.")

let seed =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let daemon_name =
  (* The daemon list in this doc string derives from the one registry, so it
     cannot drift from what `daemon_by_name` accepts. *)
  Arg.(
    value & opt string "distributed-random"
    & info [ "d"; "daemon" ] ~docv:"DAEMON"
        ~doc:(Printf.sprintf "Daemon: %s." (String.concat ", " (Daemon.names ()))))

let spec_conv =
  let parse s =
    match s with
    | "dominating-set" -> Ok Spec.dominating_set
    | "global-offensive" -> Ok Spec.global_offensive
    | "global-defensive" -> Ok Spec.global_defensive
    | "global-powerful" -> Ok Spec.global_powerful
    | s -> (
        match String.index_opt s ',' with
        | Some i -> (
            try
              let f = int_of_string (String.sub s 0 i) in
              let g = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
              Ok (Spec.custom ~name:(Printf.sprintf "(%d,%d)" f g) ~f ~g)
            with _ -> Error (`Msg "expected F,G with integer F and G"))
        | None ->
            Error
              (`Msg
                "unknown spec (named instance or F,G for constant functions)"))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf s.Spec.spec_name)

let spec =
  Arg.(
    value
    & opt spec_conv Spec.dominating_set
    & info [ "spec" ] ~docv:"SPEC"
        ~doc:"Alliance instance: dominating-set, global-offensive, \
              global-defensive, global-powerful, or F,G constants.")

let scheduler_conv =
  let parse = function
    | "full" -> Ok `Full
    | "incremental" -> Ok `Incremental
    | s ->
        Error
          (`Msg
            (Printf.sprintf "unknown scheduler %S (full or incremental)" s))
  in
  let print ppf (s : Ssreset_sim.Engine.scheduler) =
    Format.pp_print_string ppf
      (match s with `Full -> "full" | `Incremental -> "incremental")
  in
  Arg.conv (parse, print)

let scheduler =
  Arg.(
    value
    & opt scheduler_conv `Incremental
    & info [ "scheduler" ] ~docv:"SCHED"
        ~doc:
          "Engine scheduler: $(b,incremental) (dirty-set, the default) or \
           $(b,full) (per-step rescan).  Results are bit-identical either \
           way; only wall-clock differs.")

(* ------------------------- telemetry output opts ------------------------ *)

type output = {
  json : bool;
  trace_out : string option;
  trace_steps : bool;
  prof_out : string option;
  prof_window : int;
}

let output_term =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the observation as a single JSON object on stdout instead \
             of the text report.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a JSONL run trace to $(docv): one manifest record, one \
             record per completed round, one final summary record.")
  in
  let trace_steps =
    Arg.(
      value & flag
      & info [ "trace-steps" ]
          ~doc:
            "With $(b,--trace-out): also record one step record per engine \
             step (movers tagged with their reset-wave events for composed \
             systems) — the full ssreset-trace-v1 stream that $(b,ssreset \
             trace) analyzes.")
  in
  let prof_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prof-out" ] ~docv:"FILE"
          ~doc:
            "Profile the run and write an ssreset-prof-v1 JSONL stream to \
             $(docv): one manifest record, streaming window records (see \
             $(b,--prof-window)) and one final summary with per-phase and \
             per-rule timing attribution, scheduler and GC counters.  \
             Results are bit-identical with and without profiling.")
  in
  let prof_window =
    Arg.(
      value & opt int 0
      & info [ "prof-window" ] ~docv:"STEPS"
          ~doc:
            "With $(b,--prof-out): emit one window record every $(docv) \
             engine steps (throughput, per-rule move deltas, GC word \
             deltas) — the streaming view for long runs.  0 (default) \
             disables windows; the summary is always written.")
  in
  Term.(
    const (fun json trace_out trace_steps prof_out prof_window ->
        { json; trace_out; trace_steps; prof_out; prof_window })
    $ json $ trace_out $ trace_steps $ prof_out $ prof_window)

let report ~json name (obs : Runner.obs) =
  if json then print_endline (Json.to_string (Runner.obs_json obs))
  else begin
    Fmt.pr "%s@." name;
    Fmt.pr "  outcome ok:        %b@." obs.Runner.outcome_ok;
    Fmt.pr "  result ok:         %b@." obs.Runner.result_ok;
    Fmt.pr "  rounds:            %d@." obs.Runner.rounds;
    Fmt.pr "  steps:             %d@." obs.Runner.steps;
    Fmt.pr "  moves:             %d@." obs.Runner.moves;
    Fmt.pr "  wall clock:        %.3fs (%.0f steps/s)@." obs.Runner.wall_s
      (if obs.Runner.wall_s > 0. then
         float_of_int obs.Runner.steps /. obs.Runner.wall_s
       else 0.);
    Fmt.pr "  workload p50/p90:  %.1f / %.1f moves/proc@."
      obs.Runner.workload_p50 obs.Runner.workload_p90;
    (match obs.Runner.segments with
    | Some segments ->
        Fmt.pr "  SDR moves:         %d@." obs.Runner.sdr_moves;
        Fmt.pr "  max SDR moves/proc:%d@." obs.Runner.max_proc_sdr_moves;
        Fmt.pr "  segments:          %d@." segments
    | None ->
        (* bare run: segments / alive roots are not measured *)
        Fmt.pr "  segments:          -@.")
  end;
  if obs.Runner.outcome_ok && obs.Runner.result_ok then 0 else 1

let build ~quiet family n seed =
  let g = family.Workload.build ~seed ~n in
  if not quiet then
    Fmt.pr "network: %s (%s)@." (Metrics.summary g) family.Workload.family_name;
  g

(* Run one measured system: builds the graph, opens the trace and profile
   sinks if requested, writes the manifests, delegates to the runner (which
   streams rounds + summary; the profiler streams windows), writes the
   profile summary, and reports. *)
let measured ~output ~system ~title ~family ~n ~seed ~daemon_name
    (run :
      sink:Sink.t option ->
      prof:Prof.t option ->
      graph:Graph.t ->
      daemon:Daemon.t ->
      Runner.obs) =
  try
    let graph = build ~quiet:output.json family n seed in
    let daemon = Runner.daemon_by_name daemon_name in
    let with_prof k =
      match output.prof_out with
      | None -> k ~prof:None
      | Some path ->
          let psink = Sink.create path in
          Fun.protect
            ~finally:(fun () -> Sink.close psink)
            (fun () ->
              Sink.write psink
                (Prof.manifest ~system ~family:family.Workload.family_name
                   ~n:(Graph.n graph) ~m:(Graph.m graph) ~seed
                   ~daemon:daemon.Daemon.daemon_name
                   ~window_steps:output.prof_window ());
              let p =
                Prof.create ~window_steps:output.prof_window ~sink:psink ()
              in
              let obs = k ~prof:(Some p) in
              Prof.write_summary p;
              obs)
    in
    let with_trace ~prof k =
      match output.trace_out with
      | None -> k ~sink:None ~prof
      | Some path ->
          let sink = Sink.create path in
          (* The manifest carries the graph itself (trace_schema + edges),
             so offline analyses need no side channel. *)
          Sink.write sink
            (Sink.manifest ~system ~family:family.Workload.family_name
               ~n:(Graph.n graph) ~m:(Graph.m graph) ~seed
               ~daemon:daemon.Daemon.daemon_name
               ~extra:
                 [ ("trace_schema", Json.String Tracefile.schema);
                   ( "edges",
                     Json.List
                       (List.map
                          (fun (u, v) ->
                            Json.List [ Json.Int u; Json.Int v ])
                          (Graph.edges graph)) ) ]
               ());
          Fun.protect
            ~finally:(fun () -> Sink.close sink)
            (fun () -> k ~sink:(Some sink) ~prof)
    in
    let obs =
      with_prof (fun ~prof ->
          with_trace ~prof (fun ~sink ~prof -> run ~sink ~prof ~graph ~daemon))
    in
    report ~json:output.json title obs
  with
  | Invalid_argument msg | Sys_error msg ->
      (* unknown daemon, unwritable --trace-out path, … *)
      Fmt.epr "ssreset: %s@." msg;
      2

(* ------------------------------- systems -------------------------------- *)

(* Each system: CLI name, doc, and a runner closure.  The `run` subcommand
   dispatches on the name; the per-system subcommands reuse the same
   closures. *)
let unison_run ~seed ~scheduler ~trace_steps =
 fun ~sink ~prof ~graph ~daemon ->
  Runner.unison_composed ?sink ?prof ~scheduler ~trace_steps ~graph ~daemon
    ~seed ()

let systems ~spec ~seed ~scheduler ~trace_steps =
  [ ("unison",
     "U∘SDR from an arbitrary configuration (stop at first normal)",
     unison_run ~seed ~scheduler ~trace_steps);
    ("tail-unison",
     "tail-unison baseline from an arbitrary configuration",
     fun ~sink ~prof ~graph ~daemon ->
       Runner.tail_unison ?sink ?prof ~scheduler ~trace_steps ~graph ~daemon ~seed ());
    ("min-unison",
     "min-unison baseline (K = n²+1) from an arbitrary configuration",
     fun ~sink ~prof ~graph ~daemon ->
       Runner.min_unison ?sink ?prof ~scheduler ~trace_steps ~graph ~daemon ~seed ());
    ("agr-unison",
     "U∘AGR (mono-initiator reset baseline; needs a weakly fair daemon)",
     fun ~sink ~prof ~graph ~daemon ->
       Runner.unison_agr ?sink ?prof ~scheduler ~trace_steps ~graph ~daemon ~seed ());
    ("alliance",
     Printf.sprintf "FGA(%s)∘SDR from an arbitrary configuration"
       spec.Spec.spec_name,
     fun ~sink ~prof ~graph ~daemon ->
       Runner.fga_composed ?sink ?prof ~scheduler ~trace_steps ~spec ~graph ~daemon ~seed ());
    ("alliance-bare",
     Printf.sprintf "FGA(%s) from γ_init (non self-stabilizing run)"
       spec.Spec.spec_name,
     fun ~sink ~prof ~graph ~daemon ->
       Runner.fga_bare ?sink ?prof ~scheduler ~trace_steps ~spec ~graph ~daemon ~seed ());
    ("coloring",
     "coloring∘SDR from an arbitrary configuration",
     fun ~sink ~prof ~graph ~daemon ->
       Runner.coloring_composed ?sink ?prof ~scheduler ~trace_steps ~graph ~daemon ~seed ());
    ("mis",
     "MIS∘SDR from an arbitrary configuration",
     fun ~sink ~prof ~graph ~daemon ->
       Runner.mis_composed ?sink ?prof ~scheduler ~trace_steps ~graph ~daemon ~seed ());
    ("matching",
     "matching∘SDR from an arbitrary configuration",
     fun ~sink ~prof ~graph ~daemon ->
       Runner.matching_composed ?sink ?prof ~scheduler ~trace_steps ~graph ~daemon ~seed ()) ]

let run_system ~output ~system ~family ~n ~seed ~daemon_name ~spec ~scheduler =
  match
    List.find_opt
      (fun (name, _, _) -> name = system)
      (systems ~spec ~seed ~scheduler ~trace_steps:output.trace_steps)
  with
  | None ->
      Fmt.epr "unknown system %S (one of: %s)@." system
        (String.concat ", "
           (List.map
              (fun (name, _, _) -> name)
              (systems ~spec ~seed ~scheduler ~trace_steps:false)));
      2
  | Some (_, title, run) ->
      if
        (system = "alliance" || system = "alliance-bare")
        && not (Spec.feasible spec (family.Workload.build ~seed ~n))
      then begin
        Fmt.epr "spec %s infeasible on this network@." spec.Spec.spec_name;
        2
      end
      else measured ~output ~system ~title ~family ~n ~seed ~daemon_name run

(* ------------------------------ flat engine ----------------------------- *)

(* The flat data-path engine runs the systems whose symbolic IR is in the
   catalogue (the three unisons).  It shares the report/JSON pipeline by
   constructing a Runner.obs; per-process SDR attribution and segment
   counting are classic-engine observers, so those fields stay unmeasured
   here ([segments = None]). *)
let obs_of_flat (r : Flat.result) : Runner.obs =
  let per_proc =
    List.map float_of_int (Array.to_list r.Flat.moves_per_process)
  in
  {
    Runner.outcome_ok = r.Flat.outcome = Engine.Stabilized;
    result_ok = r.Flat.legitimate;
    rounds = r.Flat.rounds;
    moves = r.Flat.moves;
    steps = r.Flat.steps;
    sdr_moves = Engine.moves_of_rules r.Flat.moves_per_rule ~prefixes:[ "SDR-" ];
    max_proc_moves = Array.fold_left max 0 r.Flat.moves_per_process;
    max_proc_sdr_moves = 0;
    workload_p50 = Stats.percentile per_proc ~p:50.;
    workload_p90 = Stats.percentile per_proc ~p:90.;
    moves_per_rule = r.Flat.moves_per_rule;
    segments = None;
    ar_monotone = None;
    wall_s = r.Flat.wall_s;
  }

(* --heartbeat progress line, to stderr so --json/--digest stdout stays
   machine-readable. *)
let print_beat (b : Flat.beat) =
  Fmt.epr "heartbeat: step %d  moves %d  %.0f moves/s  enabled %d%s%s@."
    b.Flat.hb_steps b.Flat.hb_moves b.Flat.hb_moves_per_s b.Flat.hb_enabled
    (if b.Flat.hb_legit >= 0 then
       Printf.sprintf "  legit %d" b.Flat.hb_legit
     else "")
    (if b.Flat.hb_availability >= 0. then
       Printf.sprintf "  avail %.3f" b.Flat.hb_availability
     else "")

let run_flat ~output ~system ~family ~n ~seed ~daemon_name ~parts ~perturb
    ~digest ~monitors ~heartbeat =
  let catalogue_name =
    match system with "unison" -> "unison-sdr" | s -> s
  in
  match FlatProgs.find catalogue_name with
  | None ->
      Fmt.epr
        "engine flat runs %s (got %S); the other systems have no symbolic \
         IR to compile yet@."
        (String.concat ", "
           (List.map (fun e -> e.FlatProgs.pname) FlatProgs.entries))
        system;
      2
  | Some entry -> (
      try
        (* The ring family streams straight into CSR — no per-node adjacency
           lists are ever materialized, which is what makes n = 10⁶ fit. *)
        let graph_opt =
          if String.equal family.Workload.family_name "ring" then None
          else Some (build ~quiet:(output.json || digest) family n seed)
        in
        let csrg =
          match graph_opt with
          | None -> Csr.ring n
          | Some g -> Csr.of_graph g
        in
        let prog = FlatProgs.build entry csrg in
        let init_rng = Random.State.make [| 0xF1A7; seed |] in
        (match perturb with
        | Some k ->
            FlatProgs.init_ground prog;
            FlatProgs.perturb prog ~rng:init_rng k
        | None -> FlatProgs.init_random prog ~rng:init_rng);
        let nn = Flat.n prog in
        (* The paper's convergence bounds, latched online: 3n rounds, D·n²
           moves (ring diameter is ⌊n/2⌋; other families pay one BFS
           sweep). *)
        let monitor, rounds_bound, moves_bound =
          if not monitors then (None, None, None)
          else
            let diameter =
              match graph_opt with
              | None -> max 1 (nn / 2)
              | Some g -> Metrics.diameter g
            in
            (Some (Ssreset_obs.Monitor.create ()), Some (3 * nn),
             Some (diameter * nn * nn))
        in
        let hb = Option.map (fun every -> (every, print_beat)) heartbeat in
        let dispatch ~prof =
          if parts > 1 then begin
            if not (String.equal daemon_name "synchronous") then
              invalid_arg
                "--parts > 1 is the partitioned synchronous mode; pass -d \
                 synchronous";
            Flat.run_partitioned ?prof ?monitor ?rounds_bound ?moves_bound
              ?heartbeat:hb ~parts prog
          end
          else
            match Flat.daemon_of_name daemon_name with
            | Some d ->
                Flat.run ~seed ?prof ?monitor ?rounds_bound ?moves_bound
                  ?heartbeat:hb ~daemon:d prog
            | None ->
                invalid_arg
                  (Printf.sprintf "unknown daemon %S (one of: %s)" daemon_name
                     (String.concat ", " (Flat.daemon_names ())))
        in
        let result =
          match output.prof_out with
          | None -> dispatch ~prof:None
          | Some path ->
              let psink = Sink.create path in
              Fun.protect
                ~finally:(fun () -> Sink.close psink)
                (fun () ->
                  Sink.write psink
                    (Prof.manifest
                       ~extra:
                         [ ("engine", Json.String "flat");
                           ("parts", Json.Int (max 1 parts)) ]
                       ~system:catalogue_name
                       ~family:family.Workload.family_name ~n:nn
                       ~m:(Csr.m csrg) ~seed ~daemon:daemon_name
                       ~window_steps:output.prof_window ());
                  let p =
                    Prof.create ~window_steps:output.prof_window ~sink:psink ()
                  in
                  let result = dispatch ~prof:(Some p) in
                  Prof.write_summary p;
                  result)
        in
        (match monitor with
        | Some m when Ssreset_obs.Monitor.anomaly_count m > 0 ->
            List.iter
              (fun (a : Ssreset_obs.Monitor.anomaly) ->
                Fmt.epr
                  "monitor: %s tripped at step %d (value %d > bound %d)@."
                  a.Ssreset_obs.Monitor.monitor a.Ssreset_obs.Monitor.step
                  a.Ssreset_obs.Monitor.value a.Ssreset_obs.Monitor.bound)
              (Ssreset_obs.Monitor.anomalies m)
        | _ -> ());
        if digest then begin
          print_endline (FlatProgs.digest prog result);
          if result.Flat.outcome = Engine.Stabilized then 0 else 1
        end
        else
          report ~json:output.json
            (Printf.sprintf "%s (flat engine, n=%d%s)" entry.FlatProgs.pname
               nn
               (if parts > 1 then Printf.sprintf ", %d domains" parts else ""))
            (obs_of_flat result)
      with Invalid_argument msg | Sys_error msg ->
        Fmt.epr "ssreset: %s@." msg;
        2)

(* ------------------------------ subcommands ----------------------------- *)

let system_cmd name ~doc cli_system =
  let run family n seed daemon_name spec sched output =
    run_system ~output ~system:cli_system ~family ~n ~seed ~daemon_name ~spec
      ~scheduler:sched
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ family $ size $ seed $ daemon_name $ spec $ scheduler
      $ output_term)

let unison_cmd =
  system_cmd "unison"
    ~doc:"Self-stabilizing unison (U∘SDR) from an arbitrary configuration."
    "unison"

let tail_cmd =
  system_cmd "tail-unison"
    ~doc:"Baseline unison with reset tails ([11])." "tail-unison"

let min_cmd =
  system_cmd "min-unison"
    ~doc:"Couvreur-style baseline unison with K = n²+1 ([20])." "min-unison"

let agr_unison_cmd =
  system_cmd "agr-unison"
    ~doc:
      "Unison over the mono-initiator Arora-Gouda-style reset baseline. \
       Livelocks under unfair daemons such as central-first — that is \
       the point of experiment E15."
    "agr-unison"

let alliance_cmd =
  let run family n seed daemon_name spec bare sched output =
    let system = if bare then "alliance-bare" else "alliance" in
    run_system ~output ~system ~family ~n ~seed ~daemon_name ~spec
      ~scheduler:sched
  in
  let bare =
    Arg.(value & flag & info [ "bare" ] ~doc:"Run FGA alone from γ_init.")
  in
  Cmd.v
    (Cmd.info "alliance"
       ~doc:"Silent self-stabilizing 1-minimal (f,g)-alliance (FGA∘SDR).")
    Term.(
      const run $ family $ size $ seed $ daemon_name $ spec $ bare
      $ scheduler $ output_term)

let matching_cmd =
  system_cmd "matching" ~doc:"Silent self-stabilizing maximal matching."
    "matching"

let coloring_cmd =
  system_cmd "coloring" ~doc:"Silent self-stabilizing (Δ+1)-coloring."
    "coloring"

let mis_cmd =
  system_cmd "mis" ~doc:"Silent self-stabilizing maximal independent set."
    "mis"

let run_cmd =
  let run system family n seed daemon_name spec sched engine parts perturb
      digest monitors heartbeat output =
    match engine with
    | "classic" ->
        run_system ~output ~system ~family ~n ~seed ~daemon_name ~spec
          ~scheduler:sched
    | "flat" ->
        run_flat ~output ~system ~family ~n ~seed ~daemon_name ~parts ~perturb
          ~digest ~monitors ~heartbeat
    | e ->
        Fmt.epr "unknown engine %S (classic or flat)@." e;
        2
  in
  let system =
    Arg.(
      value
      & pos 0 string "unison"
      & info [] ~docv:"SYSTEM"
          ~doc:
            "System to run: unison, tail-unison, min-unison, agr-unison, \
             alliance, alliance-bare, coloring, mis, matching (default \
             unison).")
  in
  let engine =
    Arg.(
      value & opt string "classic"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "$(b,classic) (per-process OCaml states, all systems, all \
             telemetry) or $(b,flat) (IR-compiled unboxed data path: \
             unison, tail-unison, min-unison; the ring family streams \
             directly into CSR form, so n = 10⁶ is practical).")
  in
  let parts =
    Arg.(
      value & opt int 1
      & info [ "parts" ] ~docv:"P"
          ~doc:
            "Flat engine only: with P > 1, step with P worker domains over \
             1024-aligned node ranges (requires $(b,-d synchronous)).  \
             Results are identical for every P.")
  in
  let perturb =
    Arg.(
      value
      & opt (some int) None
      & info [ "perturb" ] ~docv:"K"
          ~doc:
            "Flat engine only: start from the legitimate ground \
             configuration with $(docv) random processes corrupted, instead \
             of a fully arbitrary configuration — the scale workload (a \
             10⁶-node run then stabilizes in seconds).")
  in
  let digest =
    Arg.(
      value & flag
      & info [ "digest" ]
          ~doc:
            "Flat engine only: print one deterministic summary line \
             (outcome, steps, moves, rounds, state checksum — no \
             wall-clock) instead of the report; byte-comparable across \
             $(b,--parts) values.")
  in
  let monitors =
    Arg.(
      value & flag
      & info [ "monitors" ]
          ~doc:
            "Flat engine only: latch the paper's convergence bounds online \
             (3n rounds; D·n² moves, ring diameter ⌊n/2⌋) and report any \
             violation on stderr.  Results are unchanged; each bound trips \
             at most once.")
  in
  let heartbeat =
    Arg.(
      value
      & opt ~vopt:(Some 100) (some int) None
      & info [ "heartbeat" ] ~docv:"STEPS"
          ~doc:
            "Flat engine only: print a progress line to stderr every \
             $(docv) engine steps (default 100): step and move counts, \
             moves/s over the interval, enabled-set size, and — when the \
             spec has a legitimacy predicate — the legitimate-node count \
             and estimated availability (fraction of fully legitimate \
             steps).")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one system on one network under one daemon — the generic \
          front door for scripted/telemetry use; combine with --json and \
          --trace-out.")
    Term.(
      const run $ system $ family $ size $ seed $ daemon_name $ spec
      $ scheduler $ engine $ parts $ perturb $ digest $ monitors $ heartbeat
      $ output_term)

let graph_cmd =
  let run family n seed dot =
    let g = family.Workload.build ~seed ~n in
    if dot then print_string (Graph.to_dot g)
    else begin
      Fmt.pr "%a@." Graph.pp g;
      Fmt.pr "diameter: %d  radius: %d  cyclomatic: %d  bipartite: %b@."
        (Metrics.diameter g) (Metrics.radius g) (Metrics.cyclomatic_number g)
        (Metrics.is_bipartite g);
      (match Metrics.girth g with
      | Some girth -> Fmt.pr "girth: %d@." girth
      | None -> Fmt.pr "girth: - (forest)@.");
      Fmt.pr "degrees: %a@."
        Fmt.(list ~sep:(any " ") (pair ~sep:(any "x") int int))
        (List.map (fun (d, c) -> (c, d)) (Metrics.degree_histogram g))
    end;
    0
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz.") in
  Cmd.v
    (Cmd.info "graph" ~doc:"Inspect a generated network.")
    Term.(const run $ family $ size $ seed $ dot)

let check_cmd =
  let family_conv =
    let all = [ "all"; "complete"; "ring"; "path"; "star" ] in
    Arg.enum (List.map (fun f -> (f, f)) all)
  in
  let graphs_of_family = function
    | "complete" -> Some (fun n -> [ Ssreset_graph.Gen.complete n ])
    | "ring" -> Some (fun n -> if n < 3 then [] else [ Ssreset_graph.Gen.ring n ])
    | "path" -> Some (fun n -> if n < 2 then [] else [ Ssreset_graph.Gen.path n ])
    | "star" -> Some (fun n -> if n < 2 then [] else [ Ssreset_graph.Gen.star n ])
    | _ -> None
  in
  let entry_caps (e : Registry.entry) =
    let cert =
      let g = Ssreset_graph.Gen.complete (max 2 e.Registry.min_n) in
      let module F = (val e.Registry.instance g) in
      Option.is_some F.certificate
    in
    let mark b = if b then "yes" else "-" in
    let has_rank spec =
      match spec with
      | None -> false
      | Some (s : Ssreset_check.Sym.spec) ->
          Option.is_some s.Ssreset_check.Sym.sp_rank
    in
    Printf.sprintf "%-5s %-10s %-7s %-4s %-4s" (mark cert)
      (mark (Option.is_some e.Registry.footprint))
      (mark (Option.is_some e.Registry.sym))
      (mark
         (Option.is_some e.Registry.smt_spec
         || Option.is_some e.Registry.comp_spec))
      (mark (has_rank e.Registry.smt_spec || has_rank e.Registry.comp_spec))
  in
  let run algo json quick max_n list_only symmetry footprint sym certs
      family smt_out =
    if list_only then begin
      Fmt.pr "%-16s %-5s %-10s %-7s %-4s %-4s %s@." "NAME" "cert" "footprint"
        "sym-IR" "smt" "rank" "DESCRIPTION";
      List.iter
        (fun (e : Registry.entry) ->
          Fmt.pr "%-16s %s %s@." e.Registry.name (entry_caps e)
            e.Registry.description)
        (Registry.entries @ Registry.fixtures);
      0
    end
    else begin
      let selected =
        match algo with
        | None -> Registry.entries
        | Some pattern -> Registry.find pattern
      in
      match selected with
      | [] ->
          Fmt.epr "no algorithm matches %S (try --list)@."
            (Option.value ~default:"" algo);
          2
      | selected ->
          let mode = if quick then `Quick else `Full in
          let options =
            { Ssreset_check.Model.default_options with symmetry; certs }
          in
          let graphs = graphs_of_family family in
          let reports =
            List.map
              (fun e ->
                Registry.run ~mode ?max_n ~footprint ~sym ?graphs ~options e)
              selected
          in
          (match smt_out with
          | None -> ()
          | Some dir ->
              let obs =
                List.concat_map
                  (fun (r : Report.entry_report) -> r.Report.obligations)
                  reports
              in
              if obs = [] then
                Fmt.epr "no selected entry carries a symbolic spec; nothing \
                         to emit@."
              else
                let manifest = Ssreset_check.Obligation.write ~dir obs in
                Fmt.epr "wrote %d obligations + %s@." (List.length obs)
                  manifest);
          if json then print_endline (Json.to_string (Report.to_json reports))
          else Fmt.pr "%a@." Report.pp reports;
          if Report.ok reports then 0 else 1
    end
  in
  let algo =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ALGO"
          ~doc:
            "Algorithm name or substring (e.g. $(b,unison) selects \
             min-unison, tail-unison and unison-sdr).  Default: every \
             registered paper algorithm; the toy fixtures run only when \
             named explicitly.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the findings report as one JSON object on stdout.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Use the small graph-size ceilings (the same sweep as `dune \
             runtest`).")
  in
  let max_n =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-n" ] ~docv:"N"
          ~doc:
            "Override the per-entry ceiling: check all connected graphs up \
             to $(docv) processes (one per isomorphism class; capped at \
             6).")
  in
  let list_only =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:
            "List registered algorithms and fixtures with their capability \
             columns: potential-function certificate, composed footprint \
             target, symbolic rule IR (differential pass), SMT obligation \
             spec (input-layer or composed), global ranking function \
             (rank / comp.rank obligation families).")
  in
  let symmetry =
    Arg.(
      value & flag
      & info [ "symmetry" ]
          ~doc:
            "Explore one configuration per graph-automorphism orbit instead \
             of the full configuration space.  Sound for anonymous \
             instances (uniform state domains); verdicts and worst cases \
             are identical to the unreduced run.  Lets exhaustive checking \
             reach n = 6 on symmetric graphs within the default budget.")
  in
  let footprint =
    Arg.(
      value
      & opt bool true
      & info [ "footprint" ] ~docv:"BOOL"
          ~doc:
            "Run the footprint / non-interference pass (per-rule read and \
             write sets; the paper's Requirements 2b, 2e and 3 on composed \
             instances).  Default: $(b,true).")
  in
  let sym =
    Arg.(
      value
      & opt bool true
      & info [ "sym" ] ~docv:"BOOL"
          ~doc:
            "Run the symbolic-IR differential pass (the attached \
             first-order spec must agree with the OCaml rules on the \
             enabled set and post-state, over strided view sweeps and \
             under every registered daemon).  Default: $(b,true).")
  in
  let smt_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "smt-out" ] ~docv:"DIR"
          ~doc:
            "Also compile each selected entry's symbolic spec to SMT-LIB \
             proof obligations (all four topology families) and write one \
             $(b,.smt2) per obligation plus $(b,manifest.json) into \
             $(docv).  See also the $(b,smt) subcommand.")
  in
  let certs =
    Arg.(
      value
      & opt bool true
      & info [ "certs" ] ~docv:"BOOL"
          ~doc:
            "Verify registered potential-function certificates: on every \
             explored transition out of an illegitimate configuration whose \
             movers all fired covered rules, the potential must strictly \
             decrease.  Default: $(b,true).")
  in
  let family =
    Arg.(
      value
      & opt family_conv "all"
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Restrict the sweep to one graph family per size: \
             $(b,complete), $(b,ring), $(b,path) or $(b,star) \
             ($(b,all) = every connected graph up to isomorphism).  \
             Combined with $(b,--symmetry), highly symmetric families \
             stay exhaustive up to n = 6.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Lint rule sets, analyze rule footprints and non-interference, \
          differentially validate attached symbolic rule IRs, and \
          exhaustively model-check self-stabilization properties \
          (closure, convergence/livelock-freedom, silence, certificate \
          descent, exact worst-case moves and rounds vs the paper bounds) \
          on all small connected graphs.  Exits 1 when findings or \
          violations exist.")
    Term.(
      const run $ algo $ json $ quick $ max_n $ list_only $ symmetry
      $ footprint $ sym $ certs $ family $ smt_out)

(* ------------------------------ smt export ------------------------------ *)

let smt_cmd =
  let module Obligation = Ssreset_check.Obligation in
  let module Smt = Ssreset_check.Smt in
  (* Selected entries: every registry entry / fixture carrying a symbolic
     spec or a composed-system spec, optionally filtered by a name
     pattern.  The composed spec contributes the comp.* rank family. *)
  let specs_of pattern =
    let pool =
      match pattern with
      | None -> Registry.entries @ Registry.fixtures
      | Some p -> Registry.find p
    in
    List.filter
      (fun (e : Registry.entry) ->
        Option.is_some e.Registry.smt_spec
        || Option.is_some e.Registry.comp_spec)
      pool
  in
  let compile pattern family =
    List.concat_map
      (fun (e : Registry.entry) ->
        let name = e.Registry.name in
        let base =
          match e.Registry.smt_spec with
          | None -> []
          | Some spec -> (
              match family with
              | None -> Obligation.compile_all ~algo:name spec
              | Some fam -> Obligation.compile ~algo:name spec fam)
        and composed =
          match e.Registry.comp_spec with
          | None -> []
          | Some spec -> (
              match family with
              | None -> Obligation.compile_composition_all ~algo:name spec
              | Some fam -> Obligation.compile_composition ~algo:name spec fam)
        in
        base @ composed)
      (specs_of pattern)
  in
  let pattern_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ALGO"
          ~doc:
            "Algorithm name or substring; default: every entry carrying a \
             symbolic spec.")
  in
  let family_arg =
    let fam_conv =
      Arg.conv
        ( (fun s ->
            if s = "all" then Ok None
            else
              match Obligation.family_of_string s with
              | Some f -> Ok (Some f)
              | None ->
                  Error (`Msg (Printf.sprintf "unknown family %S" s))),
          fun ppf -> function
            | None -> Fmt.string ppf "all"
            | Some f -> Fmt.string ppf (Obligation.family_to_string f) )
    in
    Arg.(
      value
      & opt fam_conv None
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Topology family to axiomatize: $(b,ring), $(b,path), \
             $(b,star), $(b,complete) or $(b,all) (default).")
  in
  let emit_cmd =
    let run pattern family dir json =
      match compile pattern family with
      | [] ->
          Fmt.epr "no symbolic spec matches %S (try `check --list`)@."
            (Option.value ~default:"" pattern);
          2
      | obs ->
          let manifest = Obligation.write ~dir obs in
          if json then
            print_endline (Json.to_string (Obligation.to_json obs))
          else begin
            List.iter
              (fun ob -> Fmt.pr "%s@." (Obligation.filename ob))
              obs;
            Fmt.pr "wrote %d obligations + %s@." (List.length obs) manifest
          end;
          0
    in
    let dir =
      Arg.(
        value
        & opt string "_smt"
        & info [ "o"; "out" ] ~docv:"DIR"
            ~doc:"Output directory (created if missing).  Default: $(b,_smt).")
    in
    let json =
      Arg.(
        value & flag
        & info [ "json" ]
            ~doc:"Print the manifest object on stdout instead of file names.")
    in
    Cmd.v
      (Cmd.info "emit"
         ~doc:
           "Compile symbolic specs to SMT-LIB proof obligations and write \
            one $(b,.smt2) per obligation plus $(b,manifest.json).")
      Term.(const run $ pattern_arg $ family_arg $ dir $ json)
  in
  let lint_cmd =
    let run pattern family =
      match compile pattern family with
      | [] ->
          Fmt.epr "no symbolic spec matches %S@."
            (Option.value ~default:"" pattern);
          2
      | obs ->
          let dirty = ref 0 in
          List.iter
            (fun (ob : Obligation.t) ->
              let name = Obligation.filename ob in
              match Smt.parse_string (Smt.to_string ob.Obligation.ob_script) with
              | Error msg ->
                  incr dirty;
                  Fmt.pr "FAIL %-40s re-parse: %s@." name msg
              | Ok cmds -> (
                  match Smt.lint_script cmds with
                  | [] -> Fmt.pr "ok   %s@." name
                  | findings ->
                      incr dirty;
                      List.iter
                        (fun f -> Fmt.pr "FAIL %-40s %s@." name f)
                        findings))
            obs;
          if !dirty = 0 then begin
            Fmt.pr "%d obligations, all print/parse/lint clean@."
              (List.length obs);
            0
          end
          else begin
            Fmt.pr "%d of %d obligations dirty@." !dirty (List.length obs);
            1
          end
    in
    Cmd.v
      (Cmd.info "lint"
         ~doc:
           "Compile obligations in memory, print them, re-parse the text \
            and lint the result (no free symbols, no dead declarations, a \
            check-sat) — the no-solver well-formedness gate.")
      Term.(const run $ pattern_arg $ family_arg)
  in
  let solve_cmd =
    let run pattern family solver kinds name_filter timeout =
      if not (Smt.solver_available solver) then begin
        Fmt.pr "solver %S not on PATH; skipping (obligations still \
                lint-checkable via `smt lint`)@."
          solver;
        0
      end
      else
        let keep (ob : Obligation.t) =
          (match kinds with
          | [] -> true
          | ks ->
              let k = Obligation.kind_to_string ob.Obligation.ob_kind in
              List.mem k ks)
          &&
          match name_filter with
          | None -> true
          | Some sub ->
              let name = ob.Obligation.ob_name in
              let nl = String.length name and sl = String.length sub in
              let rec at i =
                i + sl <= nl && (String.sub name i sl = sub || at (i + 1))
              in
              sl = 0 || at 0
        in
        match List.filter keep (compile pattern family) with
        | [] ->
            Fmt.epr "no obligation matches %S (kind/name filters \
                     included)@."
              (Option.value ~default:"" pattern);
            2
        | obs ->
            let args =
              match timeout with
              | None -> []
              | Some secs -> [ Printf.sprintf "-T:%d" secs ]
            in
            let tmp =
              Filename.temp_file "ssreset-smt" ""
            in
            Sys.remove tmp;
            let failures = ref 0 in
            List.iter
              (fun (ob : Obligation.t) ->
                let path = tmp ^ "." ^ Obligation.filename ob in
                Smt.write_file path ob.Obligation.ob_script;
                let verdict = Smt.solve ~solver ~args path in
                Sys.remove path;
                let name = Obligation.filename ob in
                match verdict with
                | Smt.Unsat -> Fmt.pr "ok   %-40s unsat (proved)@." name
                | Smt.Unknown -> Fmt.pr "?    %-40s unknown@." name
                | Smt.Sat ->
                    incr failures;
                    Fmt.pr "FAIL %-40s sat — obligation violated@." name
                | Smt.Solver_error msg ->
                    incr failures;
                    Fmt.pr "FAIL %-40s solver error: %s@." name msg)
              obs;
            if !failures = 0 then 0 else 1
    in
    let solver =
      Arg.(
        value
        & opt string "z3"
        & info [ "solver" ] ~docv:"BIN"
            ~doc:"SMT solver binary to execute.  Default: $(b,z3).")
    in
    let kinds =
      Arg.(
        value
        & opt (list string) []
        & info [ "kind" ] ~docv:"KIND,..."
            ~doc:
              "Only solve obligations of the listed kinds \
               ($(b,closure), $(b,cert-decrease), $(b,range), \
               $(b,requirement), $(b,rank), $(b,composition)).  Default: \
               all kinds.")
    in
    let name_filter =
      Arg.(
        value
        & opt (some string) None
        & info [ "name" ] ~docv:"SUBSTR"
            ~doc:
              "Only solve obligations whose name contains $(docv) (e.g. \
               $(b,rank-decrease)).")
    in
    let timeout =
      Arg.(
        value
        & opt (some int) None
        & info [ "timeout" ] ~docv:"SECS"
            ~doc:
              "Per-obligation soft timeout, passed to the solver as \
               $(b,-T:SECS) (z3 syntax); a timed-out obligation reports \
               $(b,unknown) and does not fail the run.")
    in
    Cmd.v
      (Cmd.info "solve"
         ~doc:
           "Discharge obligations with an external SMT solver when one is \
            on PATH (skips cleanly otherwise — nothing is linked).  Exits \
            1 on a $(b,sat) (violated obligation) or a solver error; \
            $(b,unknown) is reported but does not fail.")
      Term.(
        const run $ pattern_arg $ family_arg $ solver $ kinds $ name_filter
        $ timeout)
  in
  Cmd.group
    (Cmd.info "smt"
       ~doc:
         "Unbounded-n proof obligations: compile registered symbolic rule \
          IRs to SMT-LIB2 over a symbolic node sort with parametric \
          topology axioms, so a discharged obligation holds for every \
          graph of the family and every size.")
    [ emit_cmd; lint_cmd; solve_cmd ]

(* ----------------------------- trace explorer --------------------------- *)

(* Offline wave reconstruction: replay the recorded wave tags through the
   same span builder the online tracker feeds. *)
let span_of_trace (t : Tracefile.t) =
  let graph = Tracefile.graph_of t in
  let span = Span.create ~n:t.Tracefile.n in
  Span.seed_active ~graph span
    (List.map (fun (p, _, d) -> (p, d)) t.Tracefile.init_active);
  List.iter
    (fun (s : Tracefile.step) ->
      Span.feed_step span ~step:s.Tracefile.index
        (List.filter_map
           (fun (m : Tracefile.mover) ->
             Option.map (fun ev -> (m.Tracefile.p, ev)) m.Tracefile.wave)
           s.Tracefile.movers))
    t.Tracefile.steps;
  span

let causality_of_trace ?keep_edges (t : Tracefile.t) =
  Causality.build ?keep_edges ~graph:(Tracefile.graph_of t)
    (Tracefile.mover_pairs t)

let require_steps (t : Tracefile.t) k =
  if t.Tracefile.steps = [] then begin
    Fmt.epr
      "ssreset trace: no step records — record the run with --trace-out \
       FILE --trace-steps@.";
    2
  end
  else k ()

let wave_moves_total (w : Span.wave) =
  w.Span.r_moves + w.Span.rb_moves + w.Span.rf_moves + w.Span.c_moves

let trace_summary ~json (t : Tracefile.t) =
  let s = t.Tracefile.summary in
  let st = Span.stats (span_of_trace t) in
  let cp =
    if t.Tracefile.steps = [] then None
    else Some (Causality.critical_length (causality_of_trace t))
  in
  if json then
    print_endline
      (Json.to_string
         (Json.Obj
            ([ ("system", Json.String t.Tracefile.system);
               ("family", Json.String t.Tracefile.family);
               ("n", Json.Int t.Tracefile.n);
               ("seed", Json.Int t.Tracefile.seed);
               ("daemon", Json.String t.Tracefile.daemon);
               ("outcome", Json.String s.Tracefile.outcome);
               ("rounds", Json.Int s.Tracefile.rounds);
               ("steps", Json.Int s.Tracefile.steps);
               ("moves", Json.Int s.Tracefile.moves);
               ("anomalies", Json.Int (List.length t.Tracefile.anomalies));
               ("waves", Json.Int st.Span.wave_count);
               ("waves_completed", Json.Int st.Span.completed);
               ("max_wave_depth", Json.Int st.Span.max_depth);
               ("max_wave_members", Json.Int st.Span.max_members);
               ("max_wave_duration", Json.Int st.Span.max_duration) ]
            @
            match cp with
            | Some cp -> [ ("critical_path", Json.Int cp) ]
            | None -> [])))
  else begin
    Fmt.pr "%s on %s n=%d (seed %d, %s daemon)@." t.Tracefile.system
      t.Tracefile.family t.Tracefile.n t.Tracefile.seed t.Tracefile.daemon;
    Fmt.pr "  outcome:       %s@." s.Tracefile.outcome;
    Fmt.pr "  rounds:        %d@." s.Tracefile.rounds;
    Fmt.pr "  steps:         %d@." s.Tracefile.steps;
    Fmt.pr "  moves:         %d@." s.Tracefile.moves;
    Fmt.pr "  anomalies:     %d@." (List.length t.Tracefile.anomalies);
    List.iter
      (fun (a : Tracefile.anomaly) ->
        Fmt.pr "    %s at step %d: value %d > bound %d%s@."
          a.Tracefile.monitor a.Tracefile.step a.Tracefile.value
          a.Tracefile.bound
          (match a.Tracefile.process with
          | Some p -> Printf.sprintf " (process %d)" p
          | None -> ""))
      t.Tracefile.anomalies;
    if t.Tracefile.steps <> [] then begin
      Fmt.pr "  waves:         %d (%d completed, %d preexisting)@."
        st.Span.wave_count st.Span.completed st.Span.preexisting_count;
      Fmt.pr "  max depth:     %d@." st.Span.max_depth;
      Fmt.pr "  max members:   %d@." st.Span.max_members;
      Fmt.pr "  max duration:  %d steps@." st.Span.max_duration;
      match cp with
      | Some cp ->
          Fmt.pr "  critical path: %d moves (rounds %d)@." cp
            s.Tracefile.rounds
      | None -> ()
    end
  end;
  0

let trace_waves ~json ~check (t : Tracefile.t) =
  require_steps t @@ fun () ->
  let span = span_of_trace t in
  let waves = Span.waves span in
  let st = Span.stats span in
  (if json then
     print_endline
       (Json.to_string
          (Json.List
             (List.map
                (fun (w : Span.wave) ->
                  Json.Obj
                    [ ("id", Json.Int w.Span.id);
                      ("root", Json.Int w.Span.root);
                      ("preexisting", Json.Bool w.Span.preexisting);
                      ("members", Json.Int w.Span.members);
                      ("depth", Json.Int w.Span.depth);
                      ("r", Json.Int w.Span.r_moves);
                      ("rb", Json.Int w.Span.rb_moves);
                      ("rf", Json.Int w.Span.rf_moves);
                      ("c", Json.Int w.Span.c_moves);
                      ("first_step", Json.Int w.Span.first_step);
                      ("last_step", Json.Int w.Span.last_step);
                      ("completed", Json.Bool (w.Span.active = 0)) ])
                waves)))
   else begin
     Fmt.pr "%d wave(s), %d completed, max depth %d@." st.Span.wave_count
       st.Span.completed st.Span.max_depth;
     Fmt.pr "  %4s %5s %7s %5s %5s  %-17s %s@." "id" "root" "members" "depth"
       "moves" "r/rb/rf/c" "steps";
     List.iter
       (fun (w : Span.wave) ->
         Fmt.pr "  %4d %5d %7d %5d %5d  %-17s %d..%d%s%s@." w.Span.id
           w.Span.root w.Span.members w.Span.depth (wave_moves_total w)
           (Printf.sprintf "%d/%d/%d/%d" w.Span.r_moves w.Span.rb_moves
              w.Span.rf_moves w.Span.c_moves)
           w.Span.first_step w.Span.last_step
           (if w.Span.preexisting then " (preexisting)" else "")
           (if w.Span.active > 0 then
              Printf.sprintf " [active %d]" w.Span.active
            else ""))
       waves
   end);
  if not check then 0
  else begin
    let require_complete = t.Tracefile.summary.Tracefile.outcome <> "step-limit" in
    let errors = ref (Span.check ~require_complete span) in
    (* Every wave-tagged move must be attributed to exactly one span: the
       per-wave totals must add up to the per-rule counters of the summary. *)
    let expect rule total =
      match
        List.assoc_opt rule t.Tracefile.summary.Tracefile.moves_per_rule
      with
      | Some expected when expected <> total ->
          errors :=
            !errors
            @ [ Printf.sprintf
                  "%s: %d moves attributed to waves but the summary counted \
                   %d"
                  rule total expected ]
      | _ -> ()
    in
    expect "SDR-R" (List.fold_left (fun a w -> a + w.Span.r_moves) 0 waves);
    expect "SDR-RB" (List.fold_left (fun a w -> a + w.Span.rb_moves) 0 waves);
    expect "SDR-RF" (List.fold_left (fun a w -> a + w.Span.rf_moves) 0 waves);
    expect "SDR-C" (List.fold_left (fun a w -> a + w.Span.c_moves) 0 waves);
    if st.Span.synthetic > 0 then
      errors :=
        !errors
        @ [ Printf.sprintf "%d synthetic wave(s): events without provenance"
              st.Span.synthetic ];
    match !errors with
    | [] ->
        Fmt.pr "wave check: OK (%d waves, every RB/RF move attributed, \
                completions balanced)@."
          st.Span.wave_count;
        0
    | errs ->
        List.iter (fun e -> Fmt.epr "wave check FAIL: %s@." e) errs;
        1
  end

let trace_critical_path ~json ~check (t : Tracefile.t) =
  require_steps t @@ fun () ->
  let c = causality_of_trace t in
  let cp = Causality.critical_length c in
  let s = t.Tracefile.summary in
  (if json then
     print_endline
       (Json.to_string
          (Json.Obj
             [ ("critical_path", Json.Int cp);
               ("moves", Json.Int (Causality.move_count c));
               ("edges", Json.Int (Causality.edge_count c));
               ("steps", Json.Int s.Tracefile.steps);
               ("rounds", Json.Int s.Tracefile.rounds);
               ( "attribution",
                 Json.Obj
                   (List.map
                      (fun (rule, count) -> (rule, Json.Int count))
                      (Causality.attribution c)) ) ]))
   else begin
     Fmt.pr "critical path: %d move(s) over %d total (%d causal edges)@." cp
       (Causality.move_count c) (Causality.edge_count c);
     Fmt.pr "  steps %d, rounds %d — the path explains %d of %d rounds@."
       s.Tracefile.steps s.Tracefile.rounds (min cp s.Tracefile.rounds)
       s.Tracefile.rounds;
     List.iter
       (fun (rule, count) -> Fmt.pr "  %-12s %d@." rule count)
       (Causality.attribution c)
   end);
  if not check then 0
  else begin
    let errors = ref [] in
    if cp > s.Tracefile.steps then
      errors :=
        [ Printf.sprintf "critical path %d exceeds steps %d" cp
            s.Tracefile.steps ];
    (* Under the synchronous daemon every move at step k was enabled or
       rewritten by a step-(k-1) neighborhood move, so the longest chain
       spans every step exactly. *)
    if t.Tracefile.daemon = "synchronous" && cp <> s.Tracefile.steps then
      errors :=
        !errors
        @ [ Printf.sprintf
              "synchronous daemon: critical path %d should equal steps %d" cp
              s.Tracefile.steps ];
    match !errors with
    | [] ->
        Fmt.pr "critical-path check: OK@.";
        0
    | errs ->
        List.iter (fun e -> Fmt.epr "critical-path check FAIL: %s@." e) errs;
        1
  end

let trace_dot ~what ~max_moves (t : Tracefile.t) =
  require_steps t @@ fun () ->
  (match what with
  | `Waves -> print_string (Span.to_dot (span_of_trace t))
  | `Causal ->
      print_string
        (Causality.to_dot ~max_moves (causality_of_trace ~keep_edges:true t)));
  0

let trace_diff ~json (a : Tracefile.t) (b : Tracefile.t) =
  let sa = a.Tracefile.summary and sb = b.Tracefile.summary in
  let sta = Span.stats (span_of_trace a)
  and stb = Span.stats (span_of_trace b) in
  let cp (t : Tracefile.t) =
    if t.Tracefile.steps = [] then 0
    else Causality.critical_length (causality_of_trace t)
  in
  let cpa = cp a and cpb = cp b in
  let fields =
    [ ("system", a.Tracefile.system, b.Tracefile.system);
      ("family", a.Tracefile.family, b.Tracefile.family);
      ("daemon", a.Tracefile.daemon, b.Tracefile.daemon);
      ("n", string_of_int a.Tracefile.n, string_of_int b.Tracefile.n);
      ("seed", string_of_int a.Tracefile.seed, string_of_int b.Tracefile.seed);
      ("outcome", sa.Tracefile.outcome, sb.Tracefile.outcome);
      ("rounds", string_of_int sa.Tracefile.rounds,
       string_of_int sb.Tracefile.rounds);
      ("steps", string_of_int sa.Tracefile.steps,
       string_of_int sb.Tracefile.steps);
      ("moves", string_of_int sa.Tracefile.moves,
       string_of_int sb.Tracefile.moves);
      ("waves", string_of_int sta.Span.wave_count,
       string_of_int stb.Span.wave_count);
      ("max_wave_depth", string_of_int sta.Span.max_depth,
       string_of_int stb.Span.max_depth);
      ("critical_path", string_of_int cpa, string_of_int cpb);
      ("anomalies", string_of_int (List.length a.Tracefile.anomalies),
       string_of_int (List.length b.Tracefile.anomalies)) ]
  in
  let diffs = List.filter (fun (_, x, y) -> x <> y) fields in
  if json then
    print_endline
      (Json.to_string
         (Json.Obj
            (List.map
               (fun (name, x, y) ->
                 (name, Json.Obj [ ("a", Json.String x); ("b", Json.String y) ]))
               diffs)))
  else if diffs = [] then Fmt.pr "traces agree on every compared field@."
  else
    List.iter
      (fun (name, x, y) -> Fmt.pr "%-15s %s | %s@." name x y)
      diffs;
  if diffs = [] then 0 else 1

let trace_cmd =
  let run action file file2 json check what max_moves =
    let load path k =
      match Tracefile.load_file path with
      | Error msg ->
          Fmt.epr "ssreset trace: %s@." msg;
          2
      | Ok t -> k t
    in
    match action with
    | "summary" -> load file (trace_summary ~json)
    | "waves" -> load file (trace_waves ~json ~check)
    | "critical-path" -> load file (trace_critical_path ~json ~check)
    | "dot" -> load file (trace_dot ~what ~max_moves)
    | "diff" -> (
        match file2 with
        | None ->
            Fmt.epr "ssreset trace diff needs two trace files@.";
            2
        | Some f2 -> load file (fun a -> load f2 (fun b -> trace_diff ~json a b)))
    | other ->
        Fmt.epr
          "unknown trace action %S (summary, waves, critical-path, diff, \
           dot)@."
          other;
        2
  in
  let action =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ACTION"
          ~doc:
            "$(b,summary) (outcome, wave and critical-path overview), \
             $(b,waves) (per-wave spans), $(b,critical-path) (happens-before \
             analysis), $(b,diff) (compare two traces), $(b,dot) (Graphviz \
             export).")
  in
  let file =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"TRACE" ~doc:"JSONL trace recorded with --trace-out.")
  in
  let file2 =
    Arg.(
      value
      & pos 2 (some string) None
      & info [] ~docv:"TRACE2" ~doc:"Second trace (for $(b,diff)).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the analysis as JSON.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Verify structural invariants (wave balance; critical path ≤ \
             steps, = steps under the synchronous daemon) and exit 1 on \
             violation.")
  in
  let what =
    Arg.(
      value
      & opt (enum [ ("waves", `Waves); ("causal", `Causal) ]) `Waves
      & info [ "what" ] ~docv:"WHAT"
          ~doc:"For $(b,dot): $(b,waves) (wave DAG) or $(b,causal) \
                (happens-before DAG).")
  in
  let max_moves =
    Arg.(
      value & opt int 400
      & info [ "max-moves" ] ~docv:"N"
          ~doc:"For $(b,dot --what causal): render at most $(docv) moves.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Explore a recorded ssreset-trace-v1 JSONL trace: reset-wave \
          provenance, happens-before critical paths, bound-monitor \
          anomalies, DOT export.  Record traces with --trace-out FILE \
          --trace-steps.")
    Term.(
      const run $ action $ file $ file2 $ json $ check $ what $ max_moves)

(* ---------------------------- profile explorer --------------------------- *)

let ns_str ns =
  let f = float_of_int ns in
  if f >= 1e9 then Printf.sprintf "%.3fs" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2fms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1fus" (f /. 1e3)
  else Printf.sprintf "%dns" ns

let fns_str f = ns_str (int_of_float f)

let prof_counter (s : Proffile.summary) name =
  Option.value ~default:0 (List.assoc_opt name s.Proffile.counters)

let section_json ~total (name, (sec : Proffile.section)) =
  ( name,
    Json.Obj
      [ ("ns", Json.Int sec.Proffile.ns);
        ( "share",
          Json.Float
            (if total > 0 then float_of_int sec.Proffile.ns /. float_of_int total
             else 0.) );
        ("count", Json.Int sec.Proffile.count);
        ("mean_ns", Json.Float sec.Proffile.mean_ns);
        ("p50_ns", Json.Float sec.Proffile.p50_ns);
        ("p90_ns", Json.Float sec.Proffile.p90_ns);
        ("max_ns", Json.Int sec.Proffile.max_ns) ] )

let print_sections ~total sections =
  Fmt.pr "  %-12s %10s %6s %10s %10s %10s %10s@." "" "total" "share" "count"
    "mean" "p50" "p90";
  List.iter
    (fun (name, (sec : Proffile.section)) ->
      Fmt.pr "  %-12s %10s %5.1f%% %10d %10s %10s %10s@." name
        (ns_str sec.Proffile.ns)
        (if total > 0 then
           100. *. float_of_int sec.Proffile.ns /. float_of_int total
         else 0.)
        sec.Proffile.count
        (fns_str sec.Proffile.mean_ns)
        (fns_str sec.Proffile.p50_ns)
        (fns_str sec.Proffile.p90_ns))
    sections

(* The acceptance criterion of the profiling layer: the lap-based phase
   timers tile the engine loop, so their sum must account for (nearly all
   of) the run's wall clock. *)
let coverage_band = (0.90, 1.10)

let prof_gauge (s : Proffile.summary) name =
  match List.assoc_opt name s.Proffile.gauges with Some v -> v | None -> 0.

(* Per-worker attribution of a partitioned flat stream: the engine's
   per-domain phase laps ([flat.workerN.*]) plus the Team's busy/barrier
   split ([pool.workerN.*]). *)
type worker_row = {
  wr_id : int;
  wr_compute_s : float;
  wr_write_s : float;
  wr_refresh_s : float;
  wr_busy_s : float;
  wr_barrier_s : float;
  wr_gc_minor : float;
  wr_gc_major : float;
}

let worker_rows (s : Proffile.summary) ~parts =
  List.init parts (fun w ->
      let g name = prof_gauge s (Printf.sprintf "%s%d.%s" "flat.worker" w name) in
      let pg name =
        prof_gauge s (Printf.sprintf "%s%d.%s" "pool.worker" w name)
      in
      { wr_id = w;
        wr_compute_s = g "compute_s";
        wr_write_s = g "write_s";
        wr_refresh_s = g "refresh_s";
        wr_busy_s = pg "busy_s";
        wr_barrier_s = pg "barrier_s";
        wr_gc_minor = g "gc_minor_words";
        wr_gc_major = g "gc_major_words" })

let worker_row_json r =
  Json.Obj
    [ ("worker", Json.Int r.wr_id);
      ("compute_s", Json.Float r.wr_compute_s);
      ("write_s", Json.Float r.wr_write_s);
      ("refresh_s", Json.Float r.wr_refresh_s);
      ("busy_s", Json.Float r.wr_busy_s);
      ("barrier_s", Json.Float r.wr_barrier_s);
      ("gc_minor_words", Json.Float r.wr_gc_minor);
      ("gc_major_words", Json.Float r.wr_gc_major) ]

let prof_report ~json ~check (p : Proffile.t) =
  let s = p.Proffile.summary in
  let attributed = Proffile.phase_total_ns p in
  let wall_ns = int_of_float (s.Proffile.wall_s *. 1e9) in
  (* A partitioned flat stream records [flat.parts]; its per-worker phase
     laps (plus barrier waits) tile parts × wall, so that is the coverage
     denominator for multi-worker streams. *)
  let parts =
    let v = int_of_float (prof_gauge s "flat.parts") in
    if v > 0 then v else 1
  in
  let wall_total_ns = wall_ns * parts in
  let coverage =
    if wall_total_ns > 0 then
      float_of_int attributed /. float_of_int wall_total_ns
    else 0.
  in
  let touched = prof_counter s "sched.touched" in
  let dedup = prof_counter s "sched.dedup_hits" in
  let dedup_rate =
    if touched > 0 then 100. *. float_of_int dedup /. float_of_int touched
    else 0.
  in
  if json then
    print_endline
      (Json.to_string
         (Json.Obj
            [ ("system", Json.String p.Proffile.system);
              ("family", Json.String p.Proffile.family);
              ("n", Json.Int p.Proffile.n);
              ("seed", Json.Int p.Proffile.seed);
              ("daemon", Json.String p.Proffile.daemon);
              ("steps", Json.Int s.Proffile.steps);
              ("moves", Json.Int s.Proffile.moves);
              ("wall_s", Json.Float s.Proffile.wall_s);
              ("windows", Json.Int s.Proffile.window_count);
              ("attributed_ns", Json.Int attributed);
              ("coverage", Json.Float coverage);
              ("parts", Json.Int parts);
              ( "workers",
                if parts > 1 then
                  Json.List (List.map worker_row_json (worker_rows s ~parts))
                else Json.List [] );
              ( "phases",
                Json.Obj
                  (List.map (section_json ~total:attributed) s.Proffile.phases)
              );
              ( "rules",
                Json.Obj
                  (List.map (section_json ~total:attributed) s.Proffile.rules)
              );
              ( "counters",
                Json.Obj
                  (List.map
                     (fun (n, v) -> (n, Json.Int v))
                     s.Proffile.counters) );
              ( "gauges",
                Json.Obj
                  (List.map
                     (fun (n, v) -> (n, Json.Float v))
                     s.Proffile.gauges) ) ]))
  else begin
    Fmt.pr "%s on %s n=%d (seed %d, %s daemon)@." p.Proffile.system
      p.Proffile.family p.Proffile.n p.Proffile.seed p.Proffile.daemon;
    Fmt.pr "  steps: %d  moves: %d  wall: %.3fs  windows: %d@."
      s.Proffile.steps s.Proffile.moves s.Proffile.wall_s
      s.Proffile.window_count;
    Fmt.pr "phases (engine loop attribution):@.";
    print_sections ~total:attributed s.Proffile.phases;
    if parts > 1 then
      Fmt.pr "  attributed %s = %.1f%% of %d workers x wall clock@."
        (ns_str attributed) (100. *. coverage) parts
    else
      Fmt.pr "  attributed %s = %.1f%% of wall clock@." (ns_str attributed)
        (100. *. coverage);
    if parts > 1 then begin
      Fmt.pr "per-worker attribution (%d domains):@." parts;
      Fmt.pr "  %-7s %10s %10s %10s %10s %10s %12s@." "worker" "compute"
        "write" "refresh" "busy" "barrier" "gc minor w";
      List.iter
        (fun r ->
          Fmt.pr "  %-7d %9.3fs %9.3fs %9.3fs %9.3fs %9.3fs %12.0f@." r.wr_id
            r.wr_compute_s r.wr_write_s r.wr_refresh_s r.wr_busy_s
            r.wr_barrier_s r.wr_gc_minor)
        (worker_rows s ~parts);
      match List.assoc_opt "barrier" s.Proffile.phases with
      | Some (sec : Proffile.section) ->
          Fmt.pr
            "  barrier waits: %d spans, p50 %s  p90 %s  max %s (%s total)@."
            sec.Proffile.count
            (fns_str sec.Proffile.p50_ns)
            (fns_str sec.Proffile.p90_ns)
            (ns_str sec.Proffile.max_ns)
            (ns_str sec.Proffile.ns)
      | None -> ()
    end;
    if touched > 0 || prof_counter s "sched.evals" > 0 then
      Fmt.pr
        "scheduler: touched %d  evals %d  dedup hits %d (%.1f%%)  table \
         flips %d@."
        touched
        (prof_counter s "sched.evals")
        dedup dedup_rate
        (prof_counter s "sched.table_flips");
    Fmt.pr "gc: minor %d w  promoted %d w  major %d w  collections %d+%d@."
      (prof_counter s "gc.minor_words")
      (prof_counter s "gc.promoted_words")
      (prof_counter s "gc.major_words")
      (prof_counter s "gc.minor_collections")
      (prof_counter s "gc.major_collections")
  end;
  if not check then 0
  else begin
    let lo, hi = coverage_band in
    if wall_ns <= 0 then begin
      Fmt.epr "prof check FAIL: summary wall_s is zero@.";
      1
    end
    else if coverage < lo || coverage > hi then begin
      Fmt.epr
        "prof check FAIL: phase attribution covers %.1f%% of %s \
         (expected %.0f%%..%.0f%%)@."
        (100. *. coverage)
        (if parts > 1 then Printf.sprintf "%d workers x wall clock" parts
         else "wall clock")
        (100. *. lo) (100. *. hi);
      1
    end
    else begin
      Fmt.pr "prof check: OK (%.1f%% of %s attributed to phases)@."
        (100. *. coverage)
        (if parts > 1 then Printf.sprintf "%d workers x wall clock" parts
         else "wall clock");
      0
    end
  end

let prof_top ~json (p : Proffile.t) =
  let s = p.Proffile.summary in
  let rules =
    List.sort
      (fun (_, (a : Proffile.section)) (_, (b : Proffile.section)) ->
        compare b.Proffile.ns a.Proffile.ns)
      s.Proffile.rules
  in
  let total =
    List.fold_left
      (fun a (_, (sec : Proffile.section)) -> a + sec.Proffile.ns)
      0 rules
  in
  if json then
    print_endline
      (Json.to_string (Json.Obj (List.map (section_json ~total) rules)))
  else if rules = [] then
    Fmt.pr "no rule timers (profile recorded without an attached engine?)@."
  else begin
    Fmt.pr "rules by total apply time:@.";
    print_sections ~total rules
  end;
  0

let prof_windows ~json (p : Proffile.t) =
  let windows = p.Proffile.windows in
  if json then
    print_endline
      (Json.to_string
         (Json.List
            (List.map
               (fun (w : Proffile.window) ->
                 Json.Obj
                   [ ("index", Json.Int w.Proffile.index);
                     ("at_step", Json.Int w.Proffile.at_step);
                     ("steps", Json.Int w.Proffile.steps);
                     ("moves", Json.Int w.Proffile.moves);
                     ("wall_s", Json.Float w.Proffile.wall_s);
                     ("steps_per_s", Json.Float w.Proffile.steps_per_s);
                     ("moves_per_s", Json.Float w.Proffile.moves_per_s);
                     ( "moves_per_rule",
                       Json.Obj
                         (List.map
                            (fun (r, c) -> (r, Json.Int c))
                            w.Proffile.moves_per_rule) );
                     ("gc_minor_words", Json.Int w.Proffile.gc_minor_words);
                     ("gc_major_words", Json.Int w.Proffile.gc_major_words) ])
               windows)))
  else if windows = [] then
    Fmt.pr
      "no window records — profile the run with --prof-window STEPS > 0@."
  else begin
    Fmt.pr "  %5s %9s %7s %7s %11s %11s %11s@." "idx" "at_step" "steps"
      "moves" "steps/s" "moves/s" "gc minor w";
    List.iter
      (fun (w : Proffile.window) ->
        Fmt.pr "  %5d %9d %7d %7d %11.0f %11.0f %11d@." w.Proffile.index
          w.Proffile.at_step w.Proffile.steps w.Proffile.moves
          w.Proffile.steps_per_s w.Proffile.moves_per_s
          w.Proffile.gc_minor_words)
      windows
  end;
  0

let prof_cmd =
  let run action file json check =
    match Proffile.load_file file with
    | Error msg ->
        Fmt.epr "ssreset prof: %s@." msg;
        2
    | Ok p -> (
        match action with
        | "report" -> prof_report ~json ~check p
        | "top" -> prof_top ~json p
        | "windows" -> prof_windows ~json p
        | other ->
            Fmt.epr "unknown prof action %S (report, top, windows)@." other;
            2)
  in
  let action =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ACTION"
          ~doc:
            "$(b,report) (per-phase attribution, scheduler and GC counters), \
             $(b,top) (rules ranked by apply time), $(b,windows) (streaming \
             throughput windows).")
  in
  let file =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"PROFILE"
          ~doc:"JSONL profile recorded with --prof-out.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the analysis as JSON.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "For $(b,report): verify the phase timers account for \
             90%..110% of the run's wall clock and exit 1 otherwise.")
  in
  Cmd.v
    (Cmd.info "prof"
       ~doc:
         "Explore a recorded ssreset-prof-v1 JSONL profile: phase/rule \
          timing attribution, scheduler and GC counters, streaming \
          windows.  Record profiles with --prof-out FILE [--prof-window \
          STEPS].")
    Term.(const run $ action $ file $ json $ check)

let experiments_cmd =
  let run quick jobs ids csv json =
    let profile =
      if quick then Ssreset_expt.Experiments.quick
      else Ssreset_expt.Experiments.full
    in
    let profile =
      match jobs with
      | Some jobs -> { profile with Ssreset_expt.Experiments.jobs }
      | None -> profile
    in
    let failures = ref 0 in
    List.iter
      (fun (id, tables) ->
        if ids = [] || List.mem id ids then begin
          if not (csv || json) then Fmt.pr "== %s ==@." id;
          List.iter
            (fun t ->
              if json then
                print_endline (Json.to_string (Ssreset_expt.Table.to_json t))
              else if csv then print_string (Ssreset_expt.Table.to_csv t)
              else begin
                Ssreset_expt.Table.print t;
                print_newline ()
              end)
            tables
        end)
      (Ssreset_expt.Experiments.all profile);
    !failures
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Small sweep.") in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Fan the grid cells of each experiment across $(docv) OCaml \
             domains.  Tables are byte-identical for any $(docv); only \
             wall-clock changes.  Default 1 (sequential).")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit tables as CSV (data only).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit tables as JSON objects, one per line.")
  in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids.")
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the experiment tables.")
    Term.(const run $ quick $ jobs $ ids $ csv $ json)

let () =
  let doc =
    "self-stabilizing distributed cooperative reset (Devismes & Johnen, \
     ICDCS 2019) — reproduction"
  in
  let info = Cmd.info "ssreset" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd; trace_cmd; prof_cmd; unison_cmd; tail_cmd; min_cmd;
            agr_unison_cmd;
            alliance_cmd; coloring_cmd; mis_cmd; matching_cmd; graph_cmd;
            check_cmd; smt_cmd; experiments_cmd ]))

(* ssreset — command-line driver for the reproduction.

   Subcommands run one system on one network under one daemon and print the
   stabilization statistics; `experiments` regenerates the full table suite
   (same as bench/main.exe).  Every run subcommand accepts `--json` (emit
   the observation as a JSON object on stdout) and `--trace-out FILE`
   (stream a JSONL run trace: manifest, per-round snapshots, summary). *)

open Cmdliner

module Graph = Ssreset_graph.Graph
module Metrics = Ssreset_graph.Metrics
module Daemon = Ssreset_sim.Daemon
module Spec = Ssreset_alliance.Spec
module Runner = Ssreset_expt.Runner
module Workload = Ssreset_expt.Workload
module Json = Ssreset_obs.Json
module Sink = Ssreset_obs.Sink
module Registry = Ssreset_check.Registry
module Report = Ssreset_check.Report

(* ---------------------------- common options ---------------------------- *)

let family_conv =
  let families =
    [ ("ring", Workload.ring); ("path", Workload.path); ("star", Workload.star);
      ("complete", Workload.complete); ("grid", Workload.grid);
      ("binary-tree", Workload.binary_tree); ("random-tree", Workload.random_tree);
      ("sparse-random", Workload.sparse_random); ("lollipop", Workload.lollipop);
      ("er", Workload.erdos_renyi 0.2) ]
  in
  let parse s =
    match List.assoc_opt s families with
    | Some f -> Ok f
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown family %S (one of: %s)" s
               (String.concat ", " (List.map fst families))))
  in
  let print ppf (f : Workload.family) =
    Format.pp_print_string ppf f.Workload.family_name
  in
  Arg.conv (parse, print)

let family =
  Arg.(
    value
    & opt family_conv Workload.ring
    & info [ "g"; "family" ] ~docv:"FAMILY"
        ~doc:"Graph family (ring, path, star, complete, grid, binary-tree, \
              random-tree, sparse-random, lollipop, er).")

let size =
  Arg.(
    value & opt int 16
    & info [ "n"; "size" ] ~docv:"N" ~doc:"Number of processes.")

let seed =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let daemon_name =
  (* The daemon list in this doc string derives from the one registry, so it
     cannot drift from what `daemon_by_name` accepts. *)
  Arg.(
    value & opt string "distributed-random"
    & info [ "d"; "daemon" ] ~docv:"DAEMON"
        ~doc:(Printf.sprintf "Daemon: %s." (String.concat ", " (Daemon.names ()))))

let spec_conv =
  let parse s =
    match s with
    | "dominating-set" -> Ok Spec.dominating_set
    | "global-offensive" -> Ok Spec.global_offensive
    | "global-defensive" -> Ok Spec.global_defensive
    | "global-powerful" -> Ok Spec.global_powerful
    | s -> (
        match String.index_opt s ',' with
        | Some i -> (
            try
              let f = int_of_string (String.sub s 0 i) in
              let g = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
              Ok (Spec.custom ~name:(Printf.sprintf "(%d,%d)" f g) ~f ~g)
            with _ -> Error (`Msg "expected F,G with integer F and G"))
        | None ->
            Error
              (`Msg
                "unknown spec (named instance or F,G for constant functions)"))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf s.Spec.spec_name)

let spec =
  Arg.(
    value
    & opt spec_conv Spec.dominating_set
    & info [ "spec" ] ~docv:"SPEC"
        ~doc:"Alliance instance: dominating-set, global-offensive, \
              global-defensive, global-powerful, or F,G constants.")

let scheduler_conv =
  let parse = function
    | "full" -> Ok `Full
    | "incremental" -> Ok `Incremental
    | s ->
        Error
          (`Msg
            (Printf.sprintf "unknown scheduler %S (full or incremental)" s))
  in
  let print ppf (s : Ssreset_sim.Engine.scheduler) =
    Format.pp_print_string ppf
      (match s with `Full -> "full" | `Incremental -> "incremental")
  in
  Arg.conv (parse, print)

let scheduler =
  Arg.(
    value
    & opt scheduler_conv `Incremental
    & info [ "scheduler" ] ~docv:"SCHED"
        ~doc:
          "Engine scheduler: $(b,incremental) (dirty-set, the default) or \
           $(b,full) (per-step rescan).  Results are bit-identical either \
           way; only wall-clock differs.")

(* ------------------------- telemetry output opts ------------------------ *)

type output = { json : bool; trace_out : string option }

let output_term =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the observation as a single JSON object on stdout instead \
             of the text report.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a JSONL run trace to $(docv): one manifest record, one \
             record per completed round, one final summary record.")
  in
  Term.(const (fun json trace_out -> { json; trace_out }) $ json $ trace_out)

let report ~json name (obs : Runner.obs) =
  if json then print_endline (Json.to_string (Runner.obs_json obs))
  else begin
    Fmt.pr "%s@." name;
    Fmt.pr "  outcome ok:        %b@." obs.Runner.outcome_ok;
    Fmt.pr "  result ok:         %b@." obs.Runner.result_ok;
    Fmt.pr "  rounds:            %d@." obs.Runner.rounds;
    Fmt.pr "  steps:             %d@." obs.Runner.steps;
    Fmt.pr "  moves:             %d@." obs.Runner.moves;
    Fmt.pr "  wall clock:        %.3fs (%.0f steps/s)@." obs.Runner.wall_s
      (if obs.Runner.wall_s > 0. then
         float_of_int obs.Runner.steps /. obs.Runner.wall_s
       else 0.);
    (match obs.Runner.segments with
    | Some segments ->
        Fmt.pr "  SDR moves:         %d@." obs.Runner.sdr_moves;
        Fmt.pr "  max SDR moves/proc:%d@." obs.Runner.max_proc_sdr_moves;
        Fmt.pr "  segments:          %d@." segments
    | None ->
        (* bare run: segments / alive roots are not measured *)
        Fmt.pr "  segments:          -@.")
  end;
  if obs.Runner.outcome_ok && obs.Runner.result_ok then 0 else 1

let build ~quiet family n seed =
  let g = family.Workload.build ~seed ~n in
  if not quiet then
    Fmt.pr "network: %s (%s)@." (Metrics.summary g) family.Workload.family_name;
  g

(* Run one measured system: builds the graph, opens the trace sink if
   requested, writes the manifest, delegates to the runner (which streams
   rounds + summary), and reports. *)
let measured ~output ~system ~title ~family ~n ~seed ~daemon_name
    (run : sink:Sink.t option -> graph:Graph.t -> daemon:Daemon.t -> Runner.obs) =
  try
    let graph = build ~quiet:output.json family n seed in
    let daemon = Runner.daemon_by_name daemon_name in
    let obs =
      match output.trace_out with
      | None -> run ~sink:None ~graph ~daemon
      | Some path ->
          let sink = Sink.create path in
          Sink.write sink
            (Sink.manifest ~system ~family:family.Workload.family_name
               ~n:(Graph.n graph) ~m:(Graph.m graph) ~seed
               ~daemon:daemon.Daemon.daemon_name ());
          Fun.protect
            ~finally:(fun () -> Sink.close sink)
            (fun () -> run ~sink:(Some sink) ~graph ~daemon)
    in
    report ~json:output.json title obs
  with
  | Invalid_argument msg | Sys_error msg ->
      (* unknown daemon, unwritable --trace-out path, … *)
      Fmt.epr "ssreset: %s@." msg;
      2

(* ------------------------------- systems -------------------------------- *)

(* Each system: CLI name, doc, and a runner closure.  The `run` subcommand
   dispatches on the name; the per-system subcommands reuse the same
   closures. *)
let unison_run ~seed ~scheduler = fun ~sink ~graph ~daemon ->
  Runner.unison_composed ?sink ~scheduler ~graph ~daemon ~seed ()

let systems ~spec ~seed ~scheduler =
  [ ("unison",
     "U∘SDR from an arbitrary configuration (stop at first normal)",
     unison_run ~seed ~scheduler);
    ("tail-unison",
     "tail-unison baseline from an arbitrary configuration",
     fun ~sink ~graph ~daemon ->
       Runner.tail_unison ?sink ~scheduler ~graph ~daemon ~seed ());
    ("min-unison",
     "min-unison baseline (K = n²+1) from an arbitrary configuration",
     fun ~sink ~graph ~daemon ->
       Runner.min_unison ?sink ~scheduler ~graph ~daemon ~seed ());
    ("agr-unison",
     "U∘AGR (mono-initiator reset baseline; needs a weakly fair daemon)",
     fun ~sink ~graph ~daemon ->
       Runner.unison_agr ?sink ~scheduler ~graph ~daemon ~seed ());
    ("alliance",
     Printf.sprintf "FGA(%s)∘SDR from an arbitrary configuration"
       spec.Spec.spec_name,
     fun ~sink ~graph ~daemon ->
       Runner.fga_composed ?sink ~scheduler ~spec ~graph ~daemon ~seed ());
    ("alliance-bare",
     Printf.sprintf "FGA(%s) from γ_init (non self-stabilizing run)"
       spec.Spec.spec_name,
     fun ~sink ~graph ~daemon ->
       Runner.fga_bare ?sink ~scheduler ~spec ~graph ~daemon ~seed ());
    ("coloring",
     "coloring∘SDR from an arbitrary configuration",
     fun ~sink ~graph ~daemon ->
       Runner.coloring_composed ?sink ~scheduler ~graph ~daemon ~seed ());
    ("mis",
     "MIS∘SDR from an arbitrary configuration",
     fun ~sink ~graph ~daemon ->
       Runner.mis_composed ?sink ~scheduler ~graph ~daemon ~seed ());
    ("matching",
     "matching∘SDR from an arbitrary configuration",
     fun ~sink ~graph ~daemon ->
       Runner.matching_composed ?sink ~scheduler ~graph ~daemon ~seed ()) ]

let run_system ~output ~system ~family ~n ~seed ~daemon_name ~spec ~scheduler =
  match
    List.find_opt
      (fun (name, _, _) -> name = system)
      (systems ~spec ~seed ~scheduler)
  with
  | None ->
      Fmt.epr "unknown system %S (one of: %s)@." system
        (String.concat ", "
           (List.map
              (fun (name, _, _) -> name)
              (systems ~spec ~seed ~scheduler)));
      2
  | Some (_, title, run) ->
      if
        (system = "alliance" || system = "alliance-bare")
        && not (Spec.feasible spec (family.Workload.build ~seed ~n))
      then begin
        Fmt.epr "spec %s infeasible on this network@." spec.Spec.spec_name;
        2
      end
      else measured ~output ~system ~title ~family ~n ~seed ~daemon_name run

(* ------------------------------ subcommands ----------------------------- *)

let system_cmd name ~doc cli_system =
  let run family n seed daemon_name spec sched output =
    run_system ~output ~system:cli_system ~family ~n ~seed ~daemon_name ~spec
      ~scheduler:sched
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ family $ size $ seed $ daemon_name $ spec $ scheduler
      $ output_term)

let unison_cmd =
  system_cmd "unison"
    ~doc:"Self-stabilizing unison (U∘SDR) from an arbitrary configuration."
    "unison"

let tail_cmd =
  system_cmd "tail-unison"
    ~doc:"Baseline unison with reset tails ([11])." "tail-unison"

let min_cmd =
  system_cmd "min-unison"
    ~doc:"Couvreur-style baseline unison with K = n²+1 ([20])." "min-unison"

let agr_unison_cmd =
  system_cmd "agr-unison"
    ~doc:
      "Unison over the mono-initiator Arora-Gouda-style reset baseline. \
       Livelocks under unfair daemons such as central-first — that is \
       the point of experiment E15."
    "agr-unison"

let alliance_cmd =
  let run family n seed daemon_name spec bare sched output =
    let system = if bare then "alliance-bare" else "alliance" in
    run_system ~output ~system ~family ~n ~seed ~daemon_name ~spec
      ~scheduler:sched
  in
  let bare =
    Arg.(value & flag & info [ "bare" ] ~doc:"Run FGA alone from γ_init.")
  in
  Cmd.v
    (Cmd.info "alliance"
       ~doc:"Silent self-stabilizing 1-minimal (f,g)-alliance (FGA∘SDR).")
    Term.(
      const run $ family $ size $ seed $ daemon_name $ spec $ bare
      $ scheduler $ output_term)

let matching_cmd =
  system_cmd "matching" ~doc:"Silent self-stabilizing maximal matching."
    "matching"

let coloring_cmd =
  system_cmd "coloring" ~doc:"Silent self-stabilizing (Δ+1)-coloring."
    "coloring"

let mis_cmd =
  system_cmd "mis" ~doc:"Silent self-stabilizing maximal independent set."
    "mis"

let run_cmd =
  let run system family n seed daemon_name spec sched output =
    run_system ~output ~system ~family ~n ~seed ~daemon_name ~spec
      ~scheduler:sched
  in
  let system =
    Arg.(
      value
      & pos 0 string "unison"
      & info [] ~docv:"SYSTEM"
          ~doc:
            "System to run: unison, tail-unison, min-unison, agr-unison, \
             alliance, alliance-bare, coloring, mis, matching (default \
             unison).")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one system on one network under one daemon — the generic \
          front door for scripted/telemetry use; combine with --json and \
          --trace-out.")
    Term.(
      const run $ system $ family $ size $ seed $ daemon_name $ spec
      $ scheduler $ output_term)

let graph_cmd =
  let run family n seed dot =
    let g = family.Workload.build ~seed ~n in
    if dot then print_string (Graph.to_dot g)
    else begin
      Fmt.pr "%a@." Graph.pp g;
      Fmt.pr "diameter: %d  radius: %d  cyclomatic: %d  bipartite: %b@."
        (Metrics.diameter g) (Metrics.radius g) (Metrics.cyclomatic_number g)
        (Metrics.is_bipartite g);
      (match Metrics.girth g with
      | Some girth -> Fmt.pr "girth: %d@." girth
      | None -> Fmt.pr "girth: - (forest)@.");
      Fmt.pr "degrees: %a@."
        Fmt.(list ~sep:(any " ") (pair ~sep:(any "x") int int))
        (List.map (fun (d, c) -> (c, d)) (Metrics.degree_histogram g))
    end;
    0
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz.") in
  Cmd.v
    (Cmd.info "graph" ~doc:"Inspect a generated network.")
    Term.(const run $ family $ size $ seed $ dot)

let check_cmd =
  let family_conv =
    let all = [ "all"; "complete"; "ring"; "path"; "star" ] in
    Arg.enum (List.map (fun f -> (f, f)) all)
  in
  let graphs_of_family = function
    | "complete" -> Some (fun n -> [ Ssreset_graph.Gen.complete n ])
    | "ring" -> Some (fun n -> if n < 3 then [] else [ Ssreset_graph.Gen.ring n ])
    | "path" -> Some (fun n -> if n < 2 then [] else [ Ssreset_graph.Gen.path n ])
    | "star" -> Some (fun n -> if n < 2 then [] else [ Ssreset_graph.Gen.star n ])
    | _ -> None
  in
  let run algo json quick max_n list_only symmetry footprint certs family =
    if list_only then begin
      List.iter
        (fun (e : Registry.entry) ->
          Fmt.pr "%-16s %s@." e.Registry.name e.Registry.description)
        (Registry.entries @ Registry.fixtures);
      0
    end
    else begin
      let selected =
        match algo with
        | None -> Registry.entries
        | Some pattern -> Registry.find pattern
      in
      match selected with
      | [] ->
          Fmt.epr "no algorithm matches %S (try --list)@."
            (Option.value ~default:"" algo);
          2
      | selected ->
          let mode = if quick then `Quick else `Full in
          let options =
            { Ssreset_check.Model.default_options with symmetry; certs }
          in
          let graphs = graphs_of_family family in
          let reports =
            List.map
              (fun e ->
                Registry.run ~mode ?max_n ~footprint ?graphs ~options e)
              selected
          in
          if json then print_endline (Json.to_string (Report.to_json reports))
          else Fmt.pr "%a@." Report.pp reports;
          if Report.ok reports then 0 else 1
    end
  in
  let algo =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ALGO"
          ~doc:
            "Algorithm name or substring (e.g. $(b,unison) selects \
             min-unison, tail-unison and unison-sdr).  Default: every \
             registered paper algorithm; the toy fixtures run only when \
             named explicitly.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the findings report as one JSON object on stdout.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Use the small graph-size ceilings (the same sweep as `dune \
             runtest`).")
  in
  let max_n =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-n" ] ~docv:"N"
          ~doc:
            "Override the per-entry ceiling: check all connected graphs up \
             to $(docv) processes (one per isomorphism class; capped at \
             6).")
  in
  let list_only =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List registered algorithms and fixtures.")
  in
  let symmetry =
    Arg.(
      value & flag
      & info [ "symmetry" ]
          ~doc:
            "Explore one configuration per graph-automorphism orbit instead \
             of the full configuration space.  Sound for anonymous \
             instances (uniform state domains); verdicts and worst cases \
             are identical to the unreduced run.  Lets exhaustive checking \
             reach n = 6 on symmetric graphs within the default budget.")
  in
  let footprint =
    Arg.(
      value
      & opt bool true
      & info [ "footprint" ] ~docv:"BOOL"
          ~doc:
            "Run the footprint / non-interference pass (per-rule read and \
             write sets; the paper's Requirements 2b, 2e and 3 on composed \
             instances).  Default: $(b,true).")
  in
  let certs =
    Arg.(
      value
      & opt bool true
      & info [ "certs" ] ~docv:"BOOL"
          ~doc:
            "Verify registered potential-function certificates: on every \
             explored transition out of an illegitimate configuration whose \
             movers all fired covered rules, the potential must strictly \
             decrease.  Default: $(b,true).")
  in
  let family =
    Arg.(
      value
      & opt family_conv "all"
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Restrict the sweep to one graph family per size: \
             $(b,complete), $(b,ring), $(b,path) or $(b,star) \
             ($(b,all) = every connected graph up to isomorphism).  \
             Combined with $(b,--symmetry), highly symmetric families \
             stay exhaustive up to n = 6.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Lint rule sets, analyze rule footprints and non-interference, \
          and exhaustively model-check self-stabilization properties \
          (closure, convergence/livelock-freedom, silence, certificate \
          descent, exact worst-case moves and rounds vs the paper bounds) \
          on all small connected graphs.  Exits 1 when findings or \
          violations exist.")
    Term.(
      const run $ algo $ json $ quick $ max_n $ list_only $ symmetry
      $ footprint $ certs $ family)

let experiments_cmd =
  let run quick jobs ids csv json =
    let profile =
      if quick then Ssreset_expt.Experiments.quick
      else Ssreset_expt.Experiments.full
    in
    let profile =
      match jobs with
      | Some jobs -> { profile with Ssreset_expt.Experiments.jobs }
      | None -> profile
    in
    let failures = ref 0 in
    List.iter
      (fun (id, tables) ->
        if ids = [] || List.mem id ids then begin
          if not (csv || json) then Fmt.pr "== %s ==@." id;
          List.iter
            (fun t ->
              if json then
                print_endline (Json.to_string (Ssreset_expt.Table.to_json t))
              else if csv then print_string (Ssreset_expt.Table.to_csv t)
              else begin
                Ssreset_expt.Table.print t;
                print_newline ()
              end)
            tables
        end)
      (Ssreset_expt.Experiments.all profile);
    !failures
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Small sweep.") in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Fan the grid cells of each experiment across $(docv) OCaml \
             domains.  Tables are byte-identical for any $(docv); only \
             wall-clock changes.  Default 1 (sequential).")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit tables as CSV (data only).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit tables as JSON objects, one per line.")
  in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids.")
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the experiment tables.")
    Term.(const run $ quick $ jobs $ ids $ csv $ json)

let () =
  let doc =
    "self-stabilizing distributed cooperative reset (Devismes & Johnen, \
     ICDCS 2019) — reproduction"
  in
  let info = Cmd.info "ssreset" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd; unison_cmd; tail_cmd; min_cmd; agr_unison_cmd;
            alliance_cmd; coloring_cmd; mis_cmd; matching_cmd; graph_cmd;
            check_cmd; experiments_cmd ]))

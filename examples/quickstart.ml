(* Quickstart: self-stabilizing unison on a ring.

   Builds a 8-process ring, starts U ∘ SDR from an adversarially corrupted
   configuration, and watches the composition reset the network and reach a
   normal configuration, after which the clocks tick in unison forever.

   Run with: dune exec examples/quickstart.exe *)

module Gen = Ssreset_graph.Gen
module Engine = Ssreset_sim.Engine
module Daemon = Ssreset_sim.Daemon
module Fault = Ssreset_sim.Fault

let () =
  let n = 8 in
  let graph = Gen.ring n in

  (* Instantiate unison with period K > n, composed with the reset layer. *)
  let module U = Ssreset_unison.Unison.Make (struct
    let k = (2 * n) + 2
  end) in

  (* An arbitrary initial configuration: random clock, random reset status —
     exactly the adversary self-stabilization quantifies over. *)
  let rng = Random.State.make [| 2024 |] in
  let gen = U.Composed.generator ~inner:U.clock_gen ~max_d:n in
  let cfg = Fault.arbitrary rng gen graph in

  Fmt.pr "initial configuration (st@d/clock per process):@.";
  Array.iteri (fun u s -> Fmt.pr "  p%d: %a@." u U.Composed.algorithm.pp s) cfg;

  (* Run under a random distributed daemon until the first normal
     configuration: every process clean and locally correct. *)
  let result =
    Engine.run
      ~rng:(Random.State.make [| 7 |])
      ~stop:(U.Composed.is_normal graph)
      ~algorithm:U.Composed.algorithm ~graph
      ~daemon:(Daemon.distributed_random 0.5)
      cfg
  in

  Fmt.pr "@.stabilized: %b in %d rounds, %d moves (%d of them reset moves)@."
    (result.Engine.outcome = Engine.Stabilized)
    result.Engine.rounds result.Engine.moves
    (Engine.moves_of_rules result.Engine.moves_per_rule ~prefixes:[ "SDR-" ]);
  Fmt.pr "paper bound: 3n = %d rounds@." (3 * n);

  Fmt.pr "@.clocks after stabilization: %a@."
    Fmt.(array ~sep:(any " ") int)
    (U.Composed.inner_config result.Engine.final);

  (* From a normal configuration the specification holds: let it tick. *)
  let continue =
    Engine.run
      ~rng:(Random.State.make [| 8 |])
      ~max_steps:(10 * n)
      ~algorithm:U.Composed.algorithm ~graph ~daemon:Daemon.synchronous
      result.Engine.final
  in
  Fmt.pr "after %d more synchronous steps the clocks read: %a@."
    continue.Engine.steps
    Fmt.(array ~sep:(any " ") int)
    (U.Composed.inner_config continue.Engine.final)

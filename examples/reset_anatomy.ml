(* Anatomy of a cooperative reset.

   A single corrupted clock on a path triggers a reset; this example prints
   the SDR layer of every configuration so the three phases of §3.3 are
   visible:

   1. broadcast   — the detecting process becomes a root (R), neighbors
                    join with increasing distances (RB);
   2. feedback    — once a process's whole neighborhood is involved it
                    flips to RF, from the DAG's leaves back to the roots;
   3. completion  — roots turn C first, then the wave of C flows down,
                    after which the input algorithm resumes.

   Run with: dune exec examples/reset_anatomy.exe *)

module Gen = Ssreset_graph.Gen
module Engine = Ssreset_sim.Engine
module Daemon = Ssreset_sim.Daemon
module Trace = Ssreset_sim.Trace
module Sdr = Ssreset_core.Sdr

let () =
  let n = 7 in
  let graph = Gen.path n in
  let module U = Ssreset_unison.Unison.Make (struct
    let k = (2 * n) + 2
  end) in

  (* A legitimate configuration ... with one corrupted clock. *)
  let inner = Array.make n 3 in
  inner.(2) <- 9;
  let cfg = U.Composed.lift inner in

  Fmt.pr
    "path of %d processes, clocks %a: process 2 is off by 6 — its neighbors \
     detect ¬P_ICorrect and start a reset@.@."
    n
    Fmt.(array ~sep:(any " ") int)
    inner;

  let trace, result =
    Trace.record
      ~rng:(Random.State.make [| 1 |])
      ~stop:(U.Composed.is_normal graph)
      ~algorithm:U.Composed.algorithm ~graph ~daemon:Daemon.synchronous cfg
  in

  let pp_cell ppf (s : int Sdr.state) =
    match s.Sdr.st with
    | Sdr.C -> Fmt.pf ppf "  C/%-2d" s.Sdr.inner
    | Sdr.RB -> Fmt.pf ppf "RB@%d/%-2d" s.Sdr.d s.Sdr.inner
    | Sdr.RF -> Fmt.pf ppf "RF@%d/%-2d" s.Sdr.d s.Sdr.inner
  in
  let pp_cfg label cfg =
    Fmt.pr "%8s  %a@." label Fmt.(array ~sep:(any "  ") pp_cell) cfg
  in
  pp_cfg "initial" trace.Trace.initial;
  List.iter
    (fun entry ->
      pp_cfg (Printf.sprintf "step %d" entry.Trace.step) entry.Trace.config)
    trace.Trace.entries;

  Fmt.pr
    "@.normal configuration reached in %d rounds (bound 3n = %d), %d moves; \
     the whole path was reset cooperatively by the two concurrent roots@."
    result.Engine.rounds (3 * n) result.Engine.moves

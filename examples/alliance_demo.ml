(* Alliance demo: silent self-stabilizing 1-minimal (f,g)-alliances.

   Computes several named alliance instances on the same random network with
   FGA ∘ SDR, starting from arbitrary configurations, and verifies the
   outputs.  Also prints the brute-force minimum size on this (small)
   network to show how close the 1-minimal solutions get.

   Run with: dune exec examples/alliance_demo.exe *)

module Gen = Ssreset_graph.Gen
module Metrics = Ssreset_graph.Metrics
module Engine = Ssreset_sim.Engine
module Daemon = Ssreset_sim.Daemon
module Fault = Ssreset_sim.Fault
module Spec = Ssreset_alliance.Spec
module Checker = Ssreset_alliance.Checker
module Brute = Ssreset_alliance.Brute

let () =
  let n = 14 in
  let graph = Gen.erdos_renyi (Random.State.make [| 42 |]) n 0.3 in
  Fmt.pr "network: %s@." (Metrics.summary graph);

  let solve spec =
    if not (Spec.feasible spec graph) then
      Fmt.pr "%-22s infeasible on this network (some degree < max(f,g))@."
        spec.Spec.spec_name
    else begin
      let module F = Ssreset_alliance.Fga.Make (struct
        let graph = graph
        let spec = spec
        let ids = None
      end) in
      let rng = Random.State.make [| 3 |] in
      let gen = F.Composed.generator ~inner:F.gen ~max_d:n in
      let cfg = Fault.arbitrary rng gen graph in
      let result =
        Engine.run
          ~rng:(Random.State.make [| 4 |])
          ~algorithm:F.Composed.algorithm ~graph
          ~daemon:Daemon.locally_central_random cfg
      in
      let alliance = F.alliance_of_composed result.Engine.final in
      let minimum =
        match Brute.minimum_size graph spec with
        | Some s -> string_of_int s
        | None -> "-"
      in
      Fmt.pr
        "%-22s silent=%b rounds=%d (bound %d)  |A|=%d (minimum %s)  \
         1-minimal=%b  members={%a}@."
        spec.Spec.spec_name
        (result.Engine.outcome = Engine.Terminal)
        result.Engine.rounds
        ((8 * n) + 4)
        (Checker.size alliance) minimum
        (Checker.is_one_minimal graph spec alliance)
        Fmt.(list ~sep:(any ",") int)
        (Checker.members alliance)
    end
  in
  List.iter solve
    [ Spec.dominating_set;
      Spec.k_domination 2;
      Spec.k_tuple_domination 2;
      Spec.global_offensive;
      Spec.global_defensive;
      Spec.global_powerful ]
